//! Graph algorithms used by the mapping and scheduling layers.
//!
//! All algorithms are linear or near-linear in the size of the graph and
//! operate on the dense node indices of [`Dag`], returning plain vectors
//! indexed by [`NodeId::index`].

use crate::dag::{Dag, NodeId};
use std::collections::VecDeque;
use std::fmt;

/// Error returned by [`topological_order`] when the graph contains a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleError {
    /// A node known to participate in (or be downstream of) a cycle.
    pub witness: NodeId,
}

impl fmt::Display for CycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "graph contains a cycle (witness node {})", self.witness)
    }
}

impl std::error::Error for CycleError {}

/// Kahn topological ordering.
///
/// Returns the nodes in an order where every edge goes from an earlier to
/// a later position.
///
/// # Errors
///
/// Returns [`CycleError`] if the graph is not acyclic; the witness is one
/// of the nodes left unprocessed.
pub fn topological_order<N, E>(g: &Dag<N, E>) -> Result<Vec<NodeId>, CycleError> {
    let n = g.node_count();
    let mut indeg: Vec<usize> = (0..n).map(|i| g.in_degree(NodeId(i as u32))).collect();
    let mut queue: VecDeque<NodeId> = g.node_ids().filter(|&v| indeg[v.index()] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for s in g.successors(v) {
            indeg[s.index()] -= 1;
            if indeg[s.index()] == 0 {
                queue.push_back(s);
            }
        }
    }
    if order.len() != n {
        let witness = g
            .node_ids()
            .find(|v| indeg[v.index()] > 0)
            .expect("some node must have positive residual in-degree");
        return Err(CycleError { witness });
    }
    Ok(order)
}

/// True if the graph has no directed cycle.
pub fn is_acyclic<N, E>(g: &Dag<N, E>) -> bool {
    topological_order(g).is_ok()
}

/// Longest weighted path from each node to any sink, where the length of a
/// path counts `node_cost` of every node on it plus `edge_cost` of every
/// edge. This is the *partial critical path* priority of list scheduling:
/// a node's value is the worst-case remaining work if it is started now.
///
/// # Errors
///
/// Returns [`CycleError`] if the graph is cyclic.
pub fn longest_path_to_sink<N, E>(
    g: &Dag<N, E>,
    mut node_cost: impl FnMut(NodeId) -> u64,
    mut edge_cost: impl FnMut(crate::dag::EdgeId) -> u64,
) -> Result<Vec<u64>, CycleError> {
    let order = topological_order(g)?;
    let mut dist = vec![0u64; g.node_count()];
    for &v in order.iter().rev() {
        let own = node_cost(v);
        let mut best = 0u64;
        for &e in g.out_edges(v) {
            let t = g.target(e);
            best = best.max(edge_cost(e) + dist[t.index()]);
        }
        dist[v.index()] = own + best;
    }
    Ok(dist)
}

/// Longest weighted path from any source to each node, counting node and
/// edge costs of everything strictly *before* the node (the node's own
/// cost is excluded). This is the ASAP lower bound on a node's start time.
///
/// # Errors
///
/// Returns [`CycleError`] if the graph is cyclic.
pub fn longest_path_from_source<N, E>(
    g: &Dag<N, E>,
    mut node_cost: impl FnMut(NodeId) -> u64,
    mut edge_cost: impl FnMut(crate::dag::EdgeId) -> u64,
) -> Result<Vec<u64>, CycleError> {
    let order = topological_order(g)?;
    let mut dist = vec![0u64; g.node_count()];
    for &v in order.iter() {
        let mut best = 0u64;
        for &e in g.in_edges(v) {
            let s = g.source(e);
            best = best.max(dist[s.index()] + node_cost(s) + edge_cost(e));
        }
        dist[v.index()] = best;
    }
    Ok(dist)
}

/// The critical-path length of the whole graph: the maximum over nodes of
/// [`longest_path_to_sink`]. Zero for an empty graph.
///
/// # Errors
///
/// Returns [`CycleError`] if the graph is cyclic.
pub fn critical_path_length<N, E>(
    g: &Dag<N, E>,
    node_cost: impl FnMut(NodeId) -> u64,
    edge_cost: impl FnMut(crate::dag::EdgeId) -> u64,
) -> Result<u64, CycleError> {
    let d = longest_path_to_sink(g, node_cost, edge_cost)?;
    Ok(d.into_iter().max().unwrap_or(0))
}

/// Set of nodes reachable from `start` (including `start`), as a boolean
/// table indexed by [`NodeId::index`]. BFS over successor edges.
pub fn reachable_from<N, E>(g: &Dag<N, E>, start: NodeId) -> Vec<bool> {
    let mut seen = vec![false; g.node_count()];
    let mut queue = VecDeque::new();
    seen[start.index()] = true;
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        for s in g.successors(v) {
            if !seen[s.index()] {
                seen[s.index()] = true;
                queue.push_back(s);
            }
        }
    }
    seen
}

/// Set of nodes from which `end` is reachable (including `end`), as a
/// boolean table. BFS over predecessor edges.
pub fn ancestors_of<N, E>(g: &Dag<N, E>, end: NodeId) -> Vec<bool> {
    let mut seen = vec![false; g.node_count()];
    let mut queue = VecDeque::new();
    seen[end.index()] = true;
    queue.push_back(end);
    while let Some(v) = queue.pop_front() {
        for p in g.predecessors(v) {
            if !seen[p.index()] {
                seen[p.index()] = true;
                queue.push_back(p);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::EdgeId;

    /// a -> b -> d, a -> c -> d
    fn diamond() -> (Dag<(), ()>, Vec<NodeId>) {
        let mut g = Dag::new();
        let ids: Vec<_> = (0..4).map(|_| g.add_node(())).collect();
        g.add_edge(ids[0], ids[1], ()).unwrap();
        g.add_edge(ids[0], ids[2], ()).unwrap();
        g.add_edge(ids[1], ids[3], ()).unwrap();
        g.add_edge(ids[2], ids[3], ()).unwrap();
        (g, ids)
    }

    #[test]
    fn topo_order_diamond() {
        let (g, ids) = diamond();
        let order = topological_order(&g).unwrap();
        assert_eq!(order.len(), 4);
        assert_eq!(order[0], ids[0]);
        assert_eq!(order[3], ids[3]);
    }

    #[test]
    fn topo_order_respects_all_edges() {
        let (g, _) = diamond();
        let order = topological_order(&g).unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; g.node_count()];
            for (i, v) in order.iter().enumerate() {
                p[v.index()] = i;
            }
            p
        };
        for e in g.edge_ids() {
            let (s, t) = g.endpoints(e);
            assert!(pos[s.index()] < pos[t.index()]);
        }
    }

    #[test]
    fn cycle_detected() {
        let mut g: Dag<(), ()> = Dag::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ()).unwrap();
        g.add_edge(b, a, ()).unwrap();
        let err = topological_order(&g).unwrap_err();
        assert!(err.to_string().contains("cycle"));
        assert!(!is_acyclic(&g));
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut g: Dag<(), ()> = Dag::new();
        let a = g.add_node(());
        g.add_edge(a, a, ()).unwrap();
        assert!(!is_acyclic(&g));
    }

    #[test]
    fn empty_graph_is_acyclic() {
        let g: Dag<(), ()> = Dag::new();
        assert!(is_acyclic(&g));
        assert_eq!(critical_path_length(&g, |_| 1, |_| 0).unwrap(), 0);
    }

    #[test]
    fn longest_path_to_sink_chain() {
        let mut g: Dag<u64, u64> = Dag::new();
        let a = g.add_node(3);
        let b = g.add_node(5);
        let c = g.add_node(2);
        g.add_edge(a, b, 10).unwrap();
        g.add_edge(b, c, 20).unwrap();
        let d = longest_path_to_sink(&g, |n| *g.node(n), |e| *g.edge(e)).unwrap();
        assert_eq!(d[c.index()], 2);
        assert_eq!(d[b.index()], 5 + 20 + 2);
        assert_eq!(d[a.index()], 3 + 10 + 27);
    }

    #[test]
    fn longest_path_picks_heavier_branch() {
        let (g, ids) = diamond();
        // Node costs: a=1,b=10,c=2,d=1; edges zero.
        let costs = [1u64, 10, 2, 1];
        let d = longest_path_to_sink(&g, |n| costs[n.index()], |_| 0).unwrap();
        assert_eq!(d[ids[0].index()], 1 + 10 + 1);
        let cp = critical_path_length(&g, |n| costs[n.index()], |_| 0).unwrap();
        assert_eq!(cp, 12);
    }

    #[test]
    fn longest_path_from_source_excludes_own_cost() {
        let mut g: Dag<u64, u64> = Dag::new();
        let a = g.add_node(3);
        let b = g.add_node(5);
        g.add_edge(a, b, 7).unwrap();
        let d = longest_path_from_source(&g, |n| *g.node(n), |e| *g.edge(e)).unwrap();
        assert_eq!(d[a.index()], 0);
        assert_eq!(d[b.index()], 3 + 7);
    }

    #[test]
    fn reachability_diamond() {
        let (g, ids) = diamond();
        let r = reachable_from(&g, ids[1]);
        assert!(r[ids[1].index()]);
        assert!(r[ids[3].index()]);
        assert!(!r[ids[0].index()]);
        assert!(!r[ids[2].index()]);
    }

    #[test]
    fn ancestors_diamond() {
        let (g, ids) = diamond();
        let a = ancestors_of(&g, ids[2]);
        assert!(a[ids[2].index()]);
        assert!(a[ids[0].index()]);
        assert!(!a[ids[1].index()]);
        assert!(!a[ids[3].index()]);
    }

    #[test]
    fn disconnected_components() {
        let mut g: Dag<(), ()> = Dag::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, ()).unwrap();
        let order = topological_order(&g).unwrap();
        assert_eq!(order.len(), 3);
        let r = reachable_from(&g, a);
        assert!(!r[c.index()]);
    }

    #[test]
    fn edge_cost_only_critical_path() {
        let mut g: Dag<(), u64> = Dag::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, 5).unwrap();
        g.add_edge(a, c, 9).unwrap();
        let cp = critical_path_length(&g, |_| 0, |e: EdgeId| *g.edge(e)).unwrap();
        assert_eq!(cp, 9);
    }
}

/// The *level* (longest path length in edges from any source) of every
/// node — the layering used to draw and to generate process graphs.
///
/// # Errors
///
/// Returns [`CycleError`] if the graph is cyclic.
pub fn levels<N, E>(g: &Dag<N, E>) -> Result<Vec<usize>, CycleError> {
    let order = topological_order(g)?;
    let mut level = vec![0usize; g.node_count()];
    for &v in &order {
        for s in g.successors(v) {
            level[s.index()] = level[s.index()].max(level[v.index()] + 1);
        }
    }
    Ok(level)
}

/// `(depth, max_width)` of a DAG: the number of levels and the size of
/// the largest level. `(0, 0)` for an empty graph.
///
/// # Errors
///
/// Returns [`CycleError`] if the graph is cyclic.
pub fn shape<N, E>(g: &Dag<N, E>) -> Result<(usize, usize), CycleError> {
    if g.is_empty() {
        return Ok((0, 0));
    }
    let lv = levels(g)?;
    let depth = lv.iter().max().copied().unwrap_or(0) + 1;
    let mut widths = vec![0usize; depth];
    for &l in &lv {
        widths[l] += 1;
    }
    Ok((depth, widths.into_iter().max().unwrap_or(0)))
}

#[cfg(test)]
mod level_tests {
    use super::*;

    #[test]
    fn levels_of_diamond() {
        let mut g: Dag<(), ()> = Dag::new();
        let ids: Vec<_> = (0..4).map(|_| g.add_node(())).collect();
        g.add_edge(ids[0], ids[1], ()).unwrap();
        g.add_edge(ids[0], ids[2], ()).unwrap();
        g.add_edge(ids[1], ids[3], ()).unwrap();
        g.add_edge(ids[2], ids[3], ()).unwrap();
        assert_eq!(levels(&g).unwrap(), vec![0, 1, 1, 2]);
        assert_eq!(shape(&g).unwrap(), (3, 2));
    }

    #[test]
    fn levels_take_longest_path() {
        // a -> b -> c and a -> c: c sits at level 2, not 1.
        let mut g: Dag<(), ()> = Dag::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, ()).unwrap();
        g.add_edge(b, c, ()).unwrap();
        g.add_edge(a, c, ()).unwrap();
        assert_eq!(levels(&g).unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn empty_and_isolated() {
        let g: Dag<(), ()> = Dag::new();
        assert_eq!(shape(&g).unwrap(), (0, 0));
        let mut g2: Dag<(), ()> = Dag::new();
        g2.add_node(());
        g2.add_node(());
        assert_eq!(levels(&g2).unwrap(), vec![0, 0]);
        assert_eq!(shape(&g2).unwrap(), (1, 2));
    }

    #[test]
    fn cyclic_rejected() {
        let mut g: Dag<(), ()> = Dag::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ()).unwrap();
        g.add_edge(b, a, ()).unwrap();
        assert!(levels(&g).is_err());
        assert!(shape(&g).is_err());
    }
}
