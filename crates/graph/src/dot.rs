//! Graphviz DOT export, for debugging generated process graphs.

use crate::dag::{Dag, EdgeId, NodeId};
use std::fmt::Write as _;

/// Renders the graph in Graphviz DOT syntax.
///
/// `node_label` and `edge_label` produce the display labels; they are free
/// to return empty strings. The output is deterministic (insertion order).
///
/// # Example
///
/// ```
/// use incdes_graph::{Dag, dot};
///
/// let mut g: Dag<&str, u32> = Dag::new();
/// let a = g.add_node("src");
/// let b = g.add_node("dst");
/// g.add_edge(a, b, 8).unwrap();
/// let out = dot::to_dot(&g, "demo", |_, w| w.to_string(), |_, w| w.to_string());
/// assert!(out.contains("digraph demo"));
/// assert!(out.contains("n0 -> n1"));
/// ```
pub fn to_dot<N, E>(
    g: &Dag<N, E>,
    name: &str,
    mut node_label: impl FnMut(NodeId, &N) -> String,
    mut edge_label: impl FnMut(EdgeId, &E) -> String,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", sanitize(name));
    let _ = writeln!(out, "  rankdir=TB;");
    for v in g.node_ids() {
        let label = escape(&node_label(v, g.node(v)));
        let _ = writeln!(out, "  {} [label=\"{}\"];", v, label);
    }
    for e in g.edge_ids() {
        let (s, t) = g.endpoints(e);
        let label = escape(&edge_label(e, g.edge(e)));
        if label.is_empty() {
            let _ = writeln!(out, "  {} -> {};", s, t);
        } else {
            let _ = writeln!(out, "  {} -> {} [label=\"{}\"];", s, t, label);
        }
    }
    out.push_str("}\n");
    out
}

fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "g".to_string()
    } else {
        cleaned
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let mut g: Dag<u32, u32> = Dag::new();
        let a = g.add_node(1);
        let b = g.add_node(2);
        let c = g.add_node(3);
        g.add_edge(a, b, 10).unwrap();
        g.add_edge(b, c, 20).unwrap();
        let s = to_dot(&g, "t", |_, w| format!("P{w}"), |_, w| format!("m{w}"));
        assert!(s.contains("digraph t {"));
        assert!(s.contains("n0 [label=\"P1\"]"));
        assert!(s.contains("n2 [label=\"P3\"]"));
        assert!(s.contains("n0 -> n1 [label=\"m10\"]"));
        assert!(s.contains("n1 -> n2 [label=\"m20\"]"));
    }

    #[test]
    fn empty_labels_omit_attribute() {
        let mut g: Dag<(), ()> = Dag::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ()).unwrap();
        let s = to_dot(&g, "t", |_, _| String::new(), |_, _| String::new());
        assert!(s.contains("n0 -> n1;"));
    }

    #[test]
    fn name_sanitized() {
        let g: Dag<(), ()> = Dag::new();
        let s = to_dot(&g, "my graph/1", |_, _| String::new(), |_, _| String::new());
        assert!(s.starts_with("digraph my_graph_1 {"));
    }

    #[test]
    fn quotes_escaped_in_labels() {
        let mut g: Dag<&'static str, ()> = Dag::new();
        g.add_node("say \"hi\"");
        let s = to_dot(&g, "t", |_, w| w.to_string(), |_, _| String::new());
        assert!(s.contains("say \\\"hi\\\""));
    }
}
