//! Compact adjacency-list directed graph.
//!
//! The structure is append-only: nodes and edges can be added but not
//! removed. This matches how process graphs are used in the workspace
//! (they are built once by a generator or a front-end and then treated as
//! immutable inputs to mapping and scheduling).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node inside a [`Dag`].
///
/// Indices are dense: the `k`-th added node has index `k`, which lets
/// callers use plain vectors as node-keyed side tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Identifier of an edge inside a [`Dag`]. Dense, like [`NodeId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// The id as a `usize`, for indexing side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The id as a `usize`, for indexing side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Error returned when an edge refers to a node that does not exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidNodeError {
    /// The offending node id.
    pub node: NodeId,
    /// Number of nodes currently in the graph.
    pub len: usize,
}

impl fmt::Display for InvalidNodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "node {} is out of bounds for graph with {} nodes",
            self.node, self.len
        )
    }
}

impl std::error::Error for InvalidNodeError {}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct EdgeRecord<E> {
    src: NodeId,
    dst: NodeId,
    weight: E,
}

/// A directed graph stored as adjacency lists, intended to hold DAGs.
///
/// `N` is the node payload, `E` the edge payload. Acyclicity is *not*
/// enforced on insertion (that would cost a search per edge); callers that
/// need the guarantee run [`crate::algo::topological_order`] once after
/// construction, which detects cycles.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dag<N, E> {
    nodes: Vec<N>,
    edges: Vec<EdgeRecord<E>>,
    /// Outgoing edge ids per node.
    succ: Vec<Vec<EdgeId>>,
    /// Incoming edge ids per node.
    pred: Vec<Vec<EdgeId>>,
}

impl<N, E> Default for Dag<N, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N, E> Dag<N, E> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Dag {
            nodes: Vec::new(),
            edges: Vec::new(),
            succ: Vec::new(),
            pred: Vec::new(),
        }
    }

    /// Creates an empty graph with capacity for `nodes` nodes and `edges` edges.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        Dag {
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
            succ: Vec::with_capacity(nodes),
            pred: Vec::with_capacity(nodes),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, weight: N) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(weight);
        self.succ.push(Vec::new());
        self.pred.push(Vec::new());
        id
    }

    /// Adds a directed edge `src -> dst`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidNodeError`] if either endpoint is out of bounds.
    pub fn add_edge(
        &mut self,
        src: NodeId,
        dst: NodeId,
        weight: E,
    ) -> Result<EdgeId, InvalidNodeError> {
        let len = self.nodes.len();
        for n in [src, dst] {
            if n.index() >= len {
                return Err(InvalidNodeError { node: n, len });
            }
        }
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(EdgeRecord { src, dst, weight });
        self.succ[src.index()].push(id);
        self.pred[dst.index()].push(id);
        Ok(id)
    }

    /// Payload of node `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of bounds.
    pub fn node(&self, n: NodeId) -> &N {
        &self.nodes[n.index()]
    }

    /// Mutable payload of node `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of bounds.
    pub fn node_mut(&mut self, n: NodeId) -> &mut N {
        &mut self.nodes[n.index()]
    }

    /// Payload of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of bounds.
    pub fn edge(&self, e: EdgeId) -> &E {
        &self.edges[e.index()].weight
    }

    /// Mutable payload of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of bounds.
    pub fn edge_mut(&mut self, e: EdgeId) -> &mut E {
        &mut self.edges[e.index()].weight
    }

    /// Source node of edge `e`.
    pub fn source(&self, e: EdgeId) -> NodeId {
        self.edges[e.index()].src
    }

    /// Destination node of edge `e`.
    pub fn target(&self, e: EdgeId) -> NodeId {
        self.edges[e.index()].dst
    }

    /// `(source, target)` of edge `e`.
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        let r = &self.edges[e.index()];
        (r.src, r.dst)
    }

    /// Iterator over all node ids, in insertion order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterator over all edge ids, in insertion order.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Iterator over node payloads, in insertion order.
    pub fn node_weights(&self) -> impl Iterator<Item = &N> {
        self.nodes.iter()
    }

    /// Outgoing edges of node `n`.
    pub fn out_edges(&self, n: NodeId) -> &[EdgeId] {
        &self.succ[n.index()]
    }

    /// Incoming edges of node `n`.
    pub fn in_edges(&self, n: NodeId) -> &[EdgeId] {
        &self.pred[n.index()]
    }

    /// Successor node ids of `n` (one entry per out-edge; duplicates possible).
    pub fn successors(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.succ[n.index()].iter().map(move |&e| self.target(e))
    }

    /// Predecessor node ids of `n` (one entry per in-edge; duplicates possible).
    pub fn predecessors(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.pred[n.index()].iter().map(move |&e| self.source(e))
    }

    /// Out-degree of `n`.
    pub fn out_degree(&self, n: NodeId) -> usize {
        self.succ[n.index()].len()
    }

    /// In-degree of `n`.
    pub fn in_degree(&self, n: NodeId) -> usize {
        self.pred[n.index()].len()
    }

    /// Nodes with in-degree 0 (entry processes of a process graph).
    pub fn sources(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&n| self.in_degree(n) == 0)
            .collect()
    }

    /// Nodes with out-degree 0 (exit processes of a process graph).
    pub fn sinks(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&n| self.out_degree(n) == 0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Dag<&'static str, u32> {
        let mut g = Dag::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        g.add_edge(a, b, 1).unwrap();
        g.add_edge(a, c, 2).unwrap();
        g.add_edge(b, d, 3).unwrap();
        g.add_edge(c, d, 4).unwrap();
        g
    }

    #[test]
    fn empty_graph() {
        let g: Dag<(), ()> = Dag::new();
        assert!(g.is_empty());
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(g.sources().is_empty());
        assert!(g.sinks().is_empty());
    }

    #[test]
    fn add_nodes_dense_ids() {
        let mut g: Dag<u32, ()> = Dag::new();
        for i in 0..10 {
            let id = g.add_node(i);
            assert_eq!(id.index(), i as usize);
        }
        assert_eq!(g.node_count(), 10);
    }

    #[test]
    fn diamond_degrees() {
        let g = diamond();
        let ids: Vec<_> = g.node_ids().collect();
        assert_eq!(g.out_degree(ids[0]), 2);
        assert_eq!(g.in_degree(ids[0]), 0);
        assert_eq!(g.in_degree(ids[3]), 2);
        assert_eq!(g.out_degree(ids[3]), 0);
        assert_eq!(g.sources(), vec![ids[0]]);
        assert_eq!(g.sinks(), vec![ids[3]]);
    }

    #[test]
    fn successors_and_predecessors() {
        let g = diamond();
        let ids: Vec<_> = g.node_ids().collect();
        let succ_a: Vec<_> = g.successors(ids[0]).collect();
        assert_eq!(succ_a, vec![ids[1], ids[2]]);
        let pred_d: Vec<_> = g.predecessors(ids[3]).collect();
        assert_eq!(pred_d, vec![ids[1], ids[2]]);
    }

    #[test]
    fn edge_endpoints_and_weights() {
        let g = diamond();
        let e0 = EdgeId(0);
        assert_eq!(g.endpoints(e0), (NodeId(0), NodeId(1)));
        assert_eq!(*g.edge(e0), 1);
    }

    #[test]
    fn edge_out_of_bounds_rejected() {
        let mut g: Dag<(), ()> = Dag::new();
        let a = g.add_node(());
        let err = g.add_edge(a, NodeId(7), ()).unwrap_err();
        assert_eq!(err.node, NodeId(7));
        assert_eq!(err.len, 1);
        assert!(err.to_string().contains("out of bounds"));
    }

    #[test]
    fn node_mut_updates_payload() {
        let mut g: Dag<u32, ()> = Dag::new();
        let a = g.add_node(1);
        *g.node_mut(a) = 42;
        assert_eq!(*g.node(a), 42);
    }

    #[test]
    fn edge_mut_updates_payload() {
        let mut g = diamond();
        *g.edge_mut(EdgeId(0)) = 99;
        assert_eq!(*g.edge(EdgeId(0)), 99);
    }

    #[test]
    fn parallel_edges_allowed() {
        let mut g: Dag<(), u8> = Dag::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 1).unwrap();
        g.add_edge(a, b, 2).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.in_degree(b), 2);
    }

    #[test]
    fn serde_round_trip() {
        let g = diamond();
        let json = serde_json::to_string(&g).unwrap();
        let g2: Dag<String, u32> = serde_json::from_str(&json).unwrap();
        assert_eq!(g2.node_count(), 4);
        assert_eq!(g2.edge_count(), 4);
        assert_eq!(g2.endpoints(EdgeId(3)), (NodeId(2), NodeId(3)));
    }
}
