//! Minimal directed-graph substrate for the `incdes` workspace.
//!
//! The incremental-design algorithms of Pop et al. (DAC 2001) operate on
//! *process graphs*: directed acyclic graphs whose nodes are processes and
//! whose edges are messages. This crate provides exactly the graph
//! operations those algorithms need — nothing more:
//!
//! * a compact adjacency-list [`Dag`] with typed node/edge payloads,
//! * Kahn topological ordering and cycle detection ([`algo::topological_order`]),
//! * longest-path (critical-path) computations ([`algo::longest_path_to_sink`]),
//! * reachability / transitive successor queries ([`algo::reachable_from`]),
//! * Graphviz DOT export for debugging ([`dot::to_dot`]).
//!
//! # Example
//!
//! ```
//! use incdes_graph::{Dag, algo};
//!
//! let mut g: Dag<&str, u64> = Dag::new();
//! let a = g.add_node("a");
//! let b = g.add_node("b");
//! let c = g.add_node("c");
//! g.add_edge(a, b, 1).unwrap();
//! g.add_edge(b, c, 2).unwrap();
//! let order = algo::topological_order(&g).unwrap();
//! assert_eq!(order, vec![a, b, c]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algo;
pub mod dag;
pub mod dot;

pub use algo::CycleError;
pub use dag::{Dag, EdgeId, NodeId};
