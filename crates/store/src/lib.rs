//! Content-addressed persistent result store for scenario campaigns.
//!
//! The paper's whole argument is *incremental* design: re-evaluating a
//! modified system should cost only what changed. This crate is the
//! storage half of that argument at the campaign level — a directory of
//! immutable JSON blobs addressed by the SHA-256 of their scenario's
//! canonical spec, so a campaign runner can skip every grid point whose
//! inputs are byte-identical to a previous run.
//!
//! The crate is deliberately ignorant of what a "scenario" is: callers
//! (see `incdes_explore::cache`) serialize a canonical fingerprint of
//! their work item and pass the bytes to [`StoreKey::of`]. The store
//! handles keying, durable blob I/O, corruption detection, locking and
//! garbage collection:
//!
//! * **Keying** — [`StoreKey::of`] hashes `incdes-store/v{N}\n` +
//!   canonical bytes with SHA-256 ([`sha256`]); [`FORMAT_EPOCH`] is part
//!   of both the hash *and* the on-disk directory name, so bumping it
//!   invalidates every old blob wholesale without touching them.
//! * **Blob I/O** — [`Store::put`] writes `checksum\npayload` to a temp
//!   file and atomically renames it into place; concurrent writers of
//!   the same key are idempotent. [`Store::lookup`] verifies the
//!   checksum: a truncated or hand-edited blob is reported as
//!   [`Lookup::Corrupt`], never served and never a panic.
//! * **Locking** — [`Store::lock`] is a cross-process advisory lock
//!   (exclusive lock file, stale locks stolen after a timeout, waiters
//!   poll with capped exponential backoff) guarding maintenance
//!   operations such as GC.
//! * **GC** — [`Store::gc`] removes every blob not in a caller-provided
//!   live set, sweeps crash debris (aged `*.tmp.*` files from
//!   interrupted puts, `.lock.stale.*` graveyard entries from lock
//!   steals); [`Store::clear`] drops the current epoch entirely.
//! * **Fault model** — every filesystem call goes through a pluggable
//!   [`Backend`] ([`FsBackend`] by default); [`FaultyBackend`] injects
//!   seed-reproducible errors from a [`FaultPlan`] for soak testing.
//!
//! Layout on disk (relative to the directory given to [`Store::open`]):
//!
//! ```text
//! .campaign-store/
//!   v1/                  <- FORMAT_EPOCH
//!     .lock              <- advisory lock (exists only while held)
//!     3f/                <- first two hex chars of the key
//!       3fa4...c2.blob   <- "sha256-of-payload\n" + payload
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod fault;
mod sha256;

pub use backend::{Backend, DirEntryInfo, FsBackend};
pub use fault::{FaultKind, FaultOp, FaultPlan, FaultyBackend, OpFaults};
pub use sha256::{hex, sha256};

use std::collections::BTreeSet;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime};

/// Version of the on-disk blob format *and* of the key derivation.
///
/// Bump this whenever either changes meaning (blob layout, fingerprint
/// semantics, report schema): the epoch participates in every key hash
/// and names the store's top-level directory, so old blobs become
/// unreachable immediately and can be deleted wholesale.
pub const FORMAT_EPOCH: u32 = 1;

/// How long a lock file may sit untouched before another process may
/// steal it (covers crashed holders). Holders do not refresh the file's
/// mtime, so the window is generous: a lock-guarded operation must
/// finish well within it (GC sweeps take milliseconds).
const LOCK_STALE_AFTER: Duration = Duration::from_secs(300);

/// How long a `*.tmp.*` file may sit before GC treats it as debris from
/// a crashed [`Store::put`]. Live writers hold their temp file only for
/// the instants between write and rename, so anything this old is
/// orphaned.
const TMP_STALE_AFTER: Duration = Duration::from_secs(300);

/// First delay of the [`Store::lock`] backoff ladder.
const LOCK_BACKOFF_START: Duration = Duration::from_millis(1);

/// Backoff cap: waiters never sleep longer than this between polls.
const LOCK_BACKOFF_CAP: Duration = Duration::from_millis(64);

/// Default [`Store::lock_timeout`] when `INCDES_STORE_LOCK_MS` is
/// unset.
const DEFAULT_LOCK_TIMEOUT: Duration = Duration::from_secs(10);

/// A content-addressed store key: the SHA-256 of an epoch-tagged
/// canonical byte string.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StoreKey([u8; 32]);

impl StoreKey {
    /// Derives the key of `canonical` under the current
    /// [`FORMAT_EPOCH`].
    #[must_use]
    pub fn of(canonical: &[u8]) -> StoreKey {
        let mut input = Vec::with_capacity(canonical.len() + 24);
        input.extend_from_slice(format!("incdes-store/v{FORMAT_EPOCH}\n").as_bytes());
        input.extend_from_slice(canonical);
        StoreKey(sha256(&input))
    }

    /// The key as 64 lowercase hex characters (the blob file stem).
    #[must_use]
    pub fn hex(&self) -> String {
        hex(&self.0)
    }

    /// Parses a 64-character hex key (e.g. a blob file stem).
    #[must_use]
    pub fn from_hex(s: &str) -> Option<StoreKey> {
        if s.len() != 64 {
            return None;
        }
        let mut out = [0u8; 32];
        for (i, byte) in out.iter_mut().enumerate() {
            *byte = u8::from_str_radix(s.get(2 * i..2 * i + 2)?, 16).ok()?;
        }
        Some(StoreKey(out))
    }

    /// Deterministic shard assignment: which of `shard_count` shards
    /// owns this key (0-based). Uniform because the key is a hash.
    ///
    /// # Panics
    ///
    /// Panics when `shard_count` is zero.
    #[must_use]
    pub fn shard_of(&self, shard_count: usize) -> usize {
        assert!(shard_count > 0, "shard_count must be positive");
        let head = u64::from_be_bytes(self.0[..8].try_into().expect("key has 32 bytes"));
        (head % shard_count as u64) as usize
    }
}

impl fmt::Debug for StoreKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "StoreKey({})", self.hex())
    }
}

impl fmt::Display for StoreKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.hex())
    }
}

/// Result of a blob lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lookup {
    /// The blob exists and its checksum verifies; the payload.
    Hit(String),
    /// No blob stored under the key.
    Miss,
    /// A blob exists but is unreadable, truncated or hand-edited
    /// (checksum mismatch). Callers must treat this as a miss and may
    /// overwrite it.
    Corrupt,
}

/// Statistics of one [`Store::gc`] sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Blobs kept (present in the live set).
    pub kept: usize,
    /// Blobs removed (absent from the live set, or unparseable names).
    pub removed: usize,
    /// Orphaned `*.tmp.*` files swept (crashed puts, aged past the
    /// staleness window).
    pub swept_tmp: usize,
    /// `.lock.stale.*` graveyard files swept (left by lock steals whose
    /// cleanup was interrupted).
    pub swept_stale_locks: usize,
}

/// An exclusive advisory lock on a store; released on drop.
#[derive(Debug)]
pub struct StoreLock {
    path: PathBuf,
    backend: Arc<dyn Backend>,
}

impl Drop for StoreLock {
    fn drop(&mut self) {
        // Release must survive transient backend faults: a lock file
        // left behind blocks every maintenance operation for the whole
        // staleness window. (GC sweeps any graveyard debris later.)
        for _ in 0..3 {
            match self.backend.remove_file(&self.path) {
                Ok(()) => return,
                Err(e) if e.kind() == io::ErrorKind::NotFound => return,
                Err(_) => {}
            }
        }
    }
}

/// A content-addressed blob store rooted at one directory.
#[derive(Debug, Clone)]
pub struct Store {
    root: PathBuf,
    backend: Arc<dyn Backend>,
}

impl Store {
    /// Opens (creating if needed) the store under `dir` on the real
    /// filesystem. The current [`FORMAT_EPOCH`]'s subdirectory is
    /// created; older epochs are left untouched (use
    /// [`Store::sweep_old_epochs`] to delete them).
    ///
    /// # Errors
    ///
    /// I/O errors creating the directory.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Store> {
        Store::open_with_backend(dir, Arc::new(FsBackend))
    }

    /// Opens the store under `dir` through an explicit [`Backend`]
    /// (e.g. a [`FaultyBackend`] for soak runs).
    ///
    /// # Errors
    ///
    /// I/O errors creating the directory.
    pub fn open_with_backend(
        dir: impl AsRef<Path>,
        backend: Arc<dyn Backend>,
    ) -> io::Result<Store> {
        let root = dir.as_ref().join(format!("v{FORMAT_EPOCH}"));
        backend.create_dir_all(&root)?;
        Ok(Store { root, backend })
    }

    /// The epoch directory blobs live under.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn blob_path(&self, key: &StoreKey) -> PathBuf {
        let hex = key.hex();
        self.root.join(&hex[..2]).join(format!("{hex}.blob"))
    }

    /// Stores `payload` under `key`, atomically: the blob is written to
    /// a writer-unique temp file (process id + a process-wide counter,
    /// so concurrent threads never share one) and renamed into place,
    /// so concurrent writers — other threads, other shards, other
    /// processes — can never expose a partially-written blob, and
    /// rewriting an existing key is safe.
    ///
    /// # Errors
    ///
    /// I/O errors writing the blob.
    pub fn put(&self, key: &StoreKey, payload: &str) -> io::Result<()> {
        static WRITER: AtomicU64 = AtomicU64::new(0);
        let path = self.blob_path(key);
        let dir = path.parent().expect("blob path has a parent");
        self.backend.create_dir_all(dir)?;
        let tmp = dir.join(format!(
            "{}.tmp.{}.{}",
            key.hex(),
            std::process::id(),
            WRITER.fetch_add(1, Ordering::Relaxed)
        ));
        let body = format!("{}\n{}", hex(&sha256(payload.as_bytes())), payload);
        self.backend.write(&tmp, body.as_bytes())?;
        match self.backend.rename(&tmp, &path) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = self.backend.remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Looks `key` up, verifying the payload checksum. Never panics on
    /// bad on-disk state: truncated, hand-edited or unreadable blobs are
    /// reported as [`Lookup::Corrupt`].
    #[must_use]
    pub fn lookup(&self, key: &StoreKey) -> Lookup {
        let path = self.blob_path(key);
        let body = match self.backend.read_to_string(&path) {
            Ok(body) => body,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Lookup::Miss,
            Err(_) => return Lookup::Corrupt,
        };
        let Some((checksum, payload)) = body.split_once('\n') else {
            return Lookup::Corrupt;
        };
        if checksum == hex(&sha256(payload.as_bytes())) {
            Lookup::Hit(payload.to_string())
        } else {
            Lookup::Corrupt
        }
    }

    /// [`Store::lookup`] flattened to an `Option` (corrupt ⇒ `None`).
    #[must_use]
    pub fn get(&self, key: &StoreKey) -> Option<String> {
        match self.lookup(key) {
            Lookup::Hit(payload) => Some(payload),
            Lookup::Miss | Lookup::Corrupt => None,
        }
    }

    /// Removes the blob under `key`; returns whether one existed.
    ///
    /// # Errors
    ///
    /// I/O errors other than the blob being absent.
    pub fn remove(&self, key: &StoreKey) -> io::Result<bool> {
        match self.backend.remove_file(&self.blob_path(key)) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// All keys currently stored, sorted (includes corrupt blobs —
    /// they still occupy their key's slot until overwritten or GC'd).
    ///
    /// # Errors
    ///
    /// I/O errors reading the store directories.
    pub fn keys(&self) -> io::Result<Vec<StoreKey>> {
        let mut keys = Vec::new();
        for shard in self.backend.list_dir(&self.root)? {
            if !shard.is_dir {
                continue;
            }
            for entry in self.backend.list_dir(&self.root.join(&shard.name))? {
                if let Some(stem) = entry.name.strip_suffix(".blob") {
                    if let Some(key) = StoreKey::from_hex(stem) {
                        keys.push(key);
                    }
                }
            }
        }
        keys.sort();
        Ok(keys)
    }

    /// Number of blobs stored.
    ///
    /// # Errors
    ///
    /// I/O errors reading the store directories.
    pub fn len(&self) -> io::Result<usize> {
        Ok(self.keys()?.len())
    }

    /// Whether the store holds no blobs.
    ///
    /// # Errors
    ///
    /// I/O errors reading the store directories.
    pub fn is_empty(&self) -> io::Result<bool> {
        Ok(self.keys()?.is_empty())
    }

    /// Attempts to take the store's advisory lock without waiting.
    /// `Ok(None)` means another live process holds it.
    ///
    /// # Errors
    ///
    /// I/O errors creating the lock file.
    pub fn try_lock(&self) -> io::Result<Option<StoreLock>> {
        let path = self.root.join(".lock");
        match self.backend.create_lock_file(&path) {
            Ok(()) => Ok(Some(StoreLock {
                path,
                backend: Arc::clone(&self.backend),
            })),
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                // Steal locks whose holder died: the file hasn't been
                // touched for LOCK_STALE_AFTER. The steal must not be
                // remove-then-recreate — two contenders could both see
                // the stale file and the slower remove would delete the
                // winner's *fresh* lock. Renaming the stale file aside
                // is atomic: exactly one contender's rename succeeds
                // (the loser's fails because the source is gone), and a
                // live lock created in between is never touched.
                let stale = self
                    .backend
                    .modified(&path)
                    .ok()
                    .and_then(|t| SystemTime::now().duration_since(t).ok())
                    .is_some_and(|age| age > LOCK_STALE_AFTER);
                if stale {
                    static STEAL: AtomicU64 = AtomicU64::new(0);
                    let graveyard = self.root.join(format!(
                        ".lock.stale.{}.{}",
                        std::process::id(),
                        STEAL.fetch_add(1, Ordering::Relaxed)
                    ));
                    if self.backend.rename(&path, &graveyard).is_ok() {
                        let _ = self.backend.remove_file(&graveyard);
                    }
                }
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    /// Takes the advisory lock, waiting up to `timeout`. Waiters poll
    /// with deterministic exponential backoff (1 ms doubling to a 64 ms
    /// cap), so heavy contention does not turn into a fixed-rate
    /// stampede on the lock file.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::TimedOut`] when the lock stays held, or I/O
    /// errors creating the lock file.
    pub fn lock(&self, timeout: Duration) -> io::Result<StoreLock> {
        let deadline = Instant::now() + timeout;
        let mut delay = LOCK_BACKOFF_START;
        loop {
            if let Some(guard) = self.try_lock()? {
                return Ok(guard);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("store lock at {} is held", self.root.display()),
                ));
            }
            std::thread::sleep(delay.min(deadline - now));
            delay = (delay * 2).min(LOCK_BACKOFF_CAP);
        }
    }

    /// The lock timeout maintenance operations ([`Store::gc`],
    /// [`Store::clear`]) wait for: `INCDES_STORE_LOCK_MS` when set
    /// (validated through `incdes_obs::diag::env_usize`), 10 s
    /// otherwise.
    #[must_use]
    pub fn lock_timeout() -> Duration {
        incdes_obs::diag::env_usize("INCDES_STORE_LOCK_MS", "store lock timeout in milliseconds")
            .map(|ms| Duration::from_millis(ms as u64))
            .unwrap_or(DEFAULT_LOCK_TIMEOUT)
    }

    /// Removes every blob whose key is not in `live`, and sweeps crash
    /// debris: `*.tmp.*` files older than the staleness window
    /// (orphaned by a put that died between write and rename — younger
    /// ones may belong to a live writer and are left alone) and
    /// `.lock.stale.*` graveyard files (dead by construction: they are
    /// renamed-aside stale locks whose removal was interrupted).
    ///
    /// Takes the store lock for the duration of the sweep so concurrent
    /// GCs cannot race each other (writers are unaffected: a `put` of a
    /// *live* key after the sweep visited its directory simply
    /// survives).
    ///
    /// # Errors
    ///
    /// Lock acquisition or I/O errors during the sweep.
    pub fn gc(&self, live: &BTreeSet<StoreKey>) -> io::Result<GcStats> {
        let _guard = self.lock(Store::lock_timeout())?;
        let mut stats = GcStats::default();
        let now = SystemTime::now();
        for entry in self.backend.list_dir(&self.root)? {
            if entry.is_dir {
                let shard_dir = self.root.join(&entry.name);
                for file in self.backend.list_dir(&shard_dir)? {
                    let path = shard_dir.join(&file.name);
                    if let Some(stem) = file.name.strip_suffix(".blob") {
                        match StoreKey::from_hex(stem) {
                            Some(key) if live.contains(&key) => stats.kept += 1,
                            Some(key) => {
                                if self.remove(&key)? {
                                    stats.removed += 1;
                                }
                            }
                            // A .blob whose stem is not a key cannot be
                            // addressed and is dead weight.
                            None => {
                                if self.backend.remove_file(&path).is_ok() {
                                    stats.removed += 1;
                                }
                            }
                        }
                    } else if file.name.contains(".tmp.") {
                        let orphaned = self
                            .backend
                            .modified(&path)
                            .ok()
                            .and_then(|t| now.duration_since(t).ok())
                            .is_some_and(|age| age > TMP_STALE_AFTER);
                        if orphaned && self.backend.remove_file(&path).is_ok() {
                            stats.swept_tmp += 1;
                        }
                    }
                }
            } else if entry.name.starts_with(".lock.stale.")
                && self
                    .backend
                    .remove_file(&self.root.join(&entry.name))
                    .is_ok()
            {
                stats.swept_stale_locks += 1;
            }
        }
        Ok(stats)
    }

    /// Removes every blob of the current epoch (and, like [`Store::gc`],
    /// sweeps crash debris).
    ///
    /// # Errors
    ///
    /// Lock acquisition or I/O errors during the sweep.
    pub fn clear(&self) -> io::Result<usize> {
        Ok(self.gc(&BTreeSet::new())?.removed)
    }

    /// Deletes the directories of *older* format epochs under `dir`
    /// (the parent passed to [`Store::open`]). Returns how many epoch
    /// directories were removed.
    ///
    /// Administrative, process-local: always operates on the real
    /// filesystem regardless of the store's backend.
    ///
    /// # Errors
    ///
    /// I/O errors reading `dir` or removing an epoch directory.
    pub fn sweep_old_epochs(dir: impl AsRef<Path>) -> io::Result<usize> {
        let mut removed = 0;
        for entry in std::fs::read_dir(dir.as_ref())? {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let Some(epoch) = name.strip_prefix('v').and_then(|v| v.parse::<u32>().ok()) else {
                continue;
            };
            if epoch < FORMAT_EPOCH {
                std::fs::remove_dir_all(entry.path())?;
                removed += 1;
            }
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_store() -> (PathBuf, Store) {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "incdes-store-test-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        let store = Store::open(&dir).expect("temp store opens");
        (dir, store)
    }

    /// Ages a file past the debris staleness window.
    fn age_file(path: &Path) {
        let file = fs::File::options()
            .write(true)
            .open(path)
            .expect("debris file opens");
        file.set_modified(SystemTime::now() - TMP_STALE_AFTER - Duration::from_secs(60))
            .expect("mtime is settable");
    }

    #[test]
    fn key_derivation_is_stable_and_epoch_tagged() {
        let a = StoreKey::of(b"scenario-1");
        let b = StoreKey::of(b"scenario-1");
        let c = StoreKey::of(b"scenario-2");
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Pinned: changing FORMAT_EPOCH or the hash breaks this on
        // purpose — bump the expectation together with the epoch.
        assert_eq!(
            a.hex(),
            hex(&sha256(b"incdes-store/v1\nscenario-1")),
            "key = sha256(epoch header + canonical bytes)"
        );
        assert_eq!(StoreKey::from_hex(&a.hex()), Some(a));
        assert_eq!(StoreKey::from_hex("zz"), None);
    }

    #[test]
    fn shard_assignment_is_deterministic_and_total() {
        let keys: Vec<StoreKey> = (0..64)
            .map(|i| StoreKey::of(format!("k{i}").as_bytes()))
            .collect();
        for &n in &[1usize, 2, 3, 8] {
            for k in &keys {
                let s = k.shard_of(n);
                assert!(s < n);
                assert_eq!(s, k.shard_of(n), "stable per key");
            }
        }
        // With 64 hashed keys over 4 shards, every shard gets work.
        let mut seen = [false; 4];
        for k in &keys {
            seen[k.shard_of(4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn put_get_roundtrip_and_overwrite() {
        let (dir, store) = temp_store();
        let key = StoreKey::of(b"point");
        assert_eq!(store.lookup(&key), Lookup::Miss);
        store.put(&key, "{\"x\":1}").unwrap();
        assert_eq!(store.get(&key), Some("{\"x\":1}".to_string()));
        // Overwrite is atomic and wins.
        store.put(&key, "{\"x\":2}").unwrap();
        assert_eq!(store.get(&key), Some("{\"x\":2}".to_string()));
        assert_eq!(store.len().unwrap(), 1);
        // Multi-line payloads survive (checksum covers everything after
        // the first newline).
        store.put(&key, "line1\nline2\n").unwrap();
        assert_eq!(store.get(&key), Some("line1\nline2\n".to_string()));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn truncated_or_edited_blob_is_corrupt_not_a_panic() {
        let (dir, store) = temp_store();
        let key = StoreKey::of(b"damaged");
        store.put(&key, "payload-bytes").unwrap();
        let path = store.blob_path(&key);

        // Truncation.
        let full = fs::read_to_string(&path).unwrap();
        fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert_eq!(store.lookup(&key), Lookup::Corrupt);
        assert_eq!(store.get(&key), None);

        // Hand-edit that keeps the structure but changes the payload.
        fs::write(&path, full.replace("payload", "poisoned")).unwrap();
        assert_eq!(store.lookup(&key), Lookup::Corrupt);

        // No newline at all.
        fs::write(&path, "garbage-without-structure").unwrap();
        assert_eq!(store.lookup(&key), Lookup::Corrupt);

        // A fresh put repairs the slot.
        store.put(&key, "payload-bytes").unwrap();
        assert_eq!(store.get(&key), Some("payload-bytes".to_string()));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn gc_keeps_live_and_removes_dead() {
        let (dir, store) = temp_store();
        let live_key = StoreKey::of(b"live");
        let dead_key = StoreKey::of(b"dead");
        store.put(&live_key, "live").unwrap();
        store.put(&dead_key, "dead").unwrap();
        let live: BTreeSet<StoreKey> = [live_key].into_iter().collect();
        let stats = store.gc(&live).unwrap();
        assert_eq!(
            stats,
            GcStats {
                kept: 1,
                removed: 1,
                swept_tmp: 0,
                swept_stale_locks: 0
            }
        );
        assert_eq!(store.get(&live_key), Some("live".to_string()));
        assert_eq!(store.lookup(&dead_key), Lookup::Miss);
        assert_eq!(store.clear().unwrap(), 1);
        assert!(store.is_empty().unwrap());
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn gc_sweeps_aged_tmp_and_stale_lock_debris() {
        let (dir, store) = temp_store();
        let key = StoreKey::of(b"live");
        store.put(&key, "live").unwrap();

        // A crashed put: temp file orphaned in the key's shard dir.
        let shard_dir = store.blob_path(&key).parent().unwrap().to_path_buf();
        let old_tmp = shard_dir.join(format!("{}.tmp.999.0", key.hex()));
        fs::write(&old_tmp, "half-written").unwrap();
        age_file(&old_tmp);
        // A *fresh* temp file: may belong to a live writer, must stay.
        let fresh_tmp = shard_dir.join(format!("{}.tmp.999.1", key.hex()));
        fs::write(&fresh_tmp, "in-flight").unwrap();
        // An interrupted lock steal: graveyard file at the store root.
        let graveyard = store.root().join(".lock.stale.999.0");
        fs::write(&graveyard, "").unwrap();

        let live: BTreeSet<StoreKey> = [key].into_iter().collect();
        let stats = store.gc(&live).unwrap();
        assert_eq!(
            stats,
            GcStats {
                kept: 1,
                removed: 0,
                swept_tmp: 1,
                swept_stale_locks: 1
            }
        );
        assert!(!old_tmp.exists(), "aged tmp debris swept");
        assert!(fresh_tmp.exists(), "fresh tmp left for its writer");
        assert!(!graveyard.exists(), "stale-lock graveyard swept");
        assert_eq!(store.get(&key), Some("live".to_string()));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn lock_is_exclusive_and_released_on_drop() {
        let (dir, store) = temp_store();
        let guard = store.try_lock().unwrap().expect("first lock succeeds");
        assert!(
            store.try_lock().unwrap().is_none(),
            "second lock must fail while held"
        );
        drop(guard);
        assert!(
            store.try_lock().unwrap().is_some(),
            "lock is free again after drop"
        );
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn lock_wait_times_out_with_backoff() {
        let (dir, store) = temp_store();
        let _guard = store.try_lock().unwrap().expect("first lock succeeds");
        let started = Instant::now();
        let err = store
            .lock(Duration::from_millis(40))
            .expect_err("held lock times out");
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        // The waiter respected the deadline rather than spinning
        // forever, and actually waited for it.
        let waited = started.elapsed();
        assert!(waited >= Duration::from_millis(40), "waited {waited:?}");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn faulty_backend_store_survives_and_reports_corruption() {
        static SALT: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "incdes-store-faulty-{}-{}",
            std::process::id(),
            SALT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        let plan = FaultPlan {
            write: OpFaults {
                fail_first: 1,
                kinds: vec![FaultKind::StorageFull],
                ..OpFaults::default()
            },
            torn_write_prob: 0.0,
            ..FaultPlan::default()
        };
        let store = Store::open_with_backend(
            &dir,
            Arc::new(FaultyBackend::new(Arc::new(FsBackend), plan, 1)),
        )
        .expect("open never faulted");
        let key = StoreKey::of(b"flaky");
        let err = store.put(&key, "x").expect_err("first write faulted");
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        store.put(&key, "x").expect("second write clean");
        assert_eq!(store.get(&key), Some("x".to_string()));
        let _ = fs::remove_dir_all(dir);
    }

    /// Satellite: concurrent put/get/gc on one store directory. Readers
    /// must never observe a corrupt blob (atomic installs), and GC must
    /// never remove a live key.
    #[test]
    fn concurrent_put_get_gc_stress() {
        let (dir, store) = temp_store();
        let keys: Vec<(StoreKey, String)> = (0..16)
            .map(|i| {
                (
                    StoreKey::of(format!("stress-{i}").as_bytes()),
                    format!("payload-{i}"),
                )
            })
            .collect();
        let live: BTreeSet<StoreKey> = keys.iter().map(|(k, _)| *k).collect();

        std::thread::scope(|scope| {
            // Writers: hammer every key repeatedly.
            for w in 0..4 {
                let store = store.clone();
                let keys = &keys;
                scope.spawn(move || {
                    for round in 0..30 {
                        for (key, payload) in keys.iter().skip(w % 2) {
                            store
                                .put(key, payload)
                                .unwrap_or_else(|e| panic!("put failed in round {round}: {e}"));
                        }
                    }
                });
            }
            // Readers: a key is either absent or exactly its payload —
            // never a torn intermediate state.
            for _ in 0..2 {
                let store = store.clone();
                let keys = &keys;
                scope.spawn(move || {
                    for _ in 0..200 {
                        for (key, payload) in keys {
                            match store.lookup(key) {
                                Lookup::Hit(found) => assert_eq!(&found, payload),
                                Lookup::Miss => {}
                                Lookup::Corrupt => panic!("reader saw a corrupt blob"),
                            }
                        }
                    }
                });
            }
            // GC: sweeps with the full live set must never lose data.
            {
                let store = store.clone();
                let live = &live;
                scope.spawn(move || {
                    for _ in 0..10 {
                        let stats = store.gc(live).expect("gc under contention");
                        assert_eq!(stats.removed, 0, "gc removed a live blob");
                        std::thread::sleep(Duration::from_millis(1));
                    }
                });
            }
        });

        for (key, payload) in &keys {
            assert_eq!(store.get(key), Some(payload.clone()), "lost live blob");
        }
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn old_epochs_are_swept() {
        let (dir, store) = temp_store();
        let key = StoreKey::of(b"current");
        store.put(&key, "x").unwrap();
        fs::create_dir_all(dir.join("v0")).unwrap();
        fs::write(dir.join("v0").join("stale"), "old blob").unwrap();
        assert_eq!(Store::sweep_old_epochs(&dir).unwrap(), 1);
        assert!(!dir.join("v0").exists());
        assert_eq!(store.get(&key), Some("x".to_string()), "current epoch kept");
        let _ = fs::remove_dir_all(dir);
    }
}
