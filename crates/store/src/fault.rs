//! Deterministic fault injection for the store backend.
//!
//! A [`FaultyBackend`] wraps any [`Backend`] and injects I/O errors
//! according to a serde-typed [`FaultPlan`], driven by a seeded ChaCha8
//! stream: the same plan, seed and operation sequence always produce
//! the same fault sequence. This is the soak harness behind
//! `figures campaign --inject-faults PLAN.json --fault-seed S` and
//! `tests/fault_injection.rs`: because the campaign pipeline treats
//! every store failure as a cache miss at worst, the final
//! `CampaignReport` must stay byte-identical to a fault-free run under
//! *any* plan.
//!
//! The plan distinguishes three fault mechanisms per operation class:
//!
//! * **`error_prob`** — each operation independently fails with this
//!   probability, drawing its error kind from `kinds`.
//! * **`fail_first`** — the first N operations of the class fail
//!   unconditionally, then stop (a bounded "outage at startup"
//!   schedule; ideal for crash-resume tests that kill the first N
//!   puts).
//! * **`torn_write_prob`** (plan-level) — a write "succeeds" but
//!   persists only a truncated prefix, modelling a crash between write
//!   and fsync. The store's checksum layer later reports the blob as
//!   `Corrupt`.
//!
//! `create_dir_all` is never faulted: directory creation failing at
//! `Store::open` would abort before the fault-tolerant paths exist, and
//! real ENOSPC-style failures surface through `write` anyway.

use crate::backend::{Backend, DirEntryInfo};
use incdes_obs::counters::{self, Counter};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::SystemTime;

/// The palette of injectable error kinds.
///
/// `WouldBlock`, `Interrupted` and `TimedOut` are *transient* — the
/// store-backed campaign cache retries them with deterministic backoff.
/// The rest are *persistent* — retrying is pointless, so the cache
/// degrades to compute-through instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// `io::ErrorKind::WouldBlock` (transient).
    WouldBlock,
    /// `io::ErrorKind::Interrupted` (transient).
    Interrupted,
    /// `io::ErrorKind::TimedOut` (transient).
    TimedOut,
    /// `io::ErrorKind::StorageFull` — the ENOSPC class (persistent).
    StorageFull,
    /// `io::ErrorKind::PermissionDenied` (persistent).
    PermissionDenied,
    /// `io::ErrorKind::Other` (persistent).
    Other,
}

impl FaultKind {
    /// The `io::ErrorKind` this fault surfaces as.
    #[must_use]
    pub fn io_kind(self) -> io::ErrorKind {
        match self {
            FaultKind::WouldBlock => io::ErrorKind::WouldBlock,
            FaultKind::Interrupted => io::ErrorKind::Interrupted,
            FaultKind::TimedOut => io::ErrorKind::TimedOut,
            FaultKind::StorageFull => io::ErrorKind::StorageFull,
            FaultKind::PermissionDenied => io::ErrorKind::PermissionDenied,
            FaultKind::Other => io::ErrorKind::Other,
        }
    }

    /// Whether a caller should retry an operation failing with this
    /// kind (see [`FaultKind`] docs for the taxonomy).
    #[must_use]
    pub fn is_transient(kind: io::ErrorKind) -> bool {
        matches!(
            kind,
            io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted | io::ErrorKind::TimedOut
        )
    }
}

/// The operation classes a [`FaultPlan`] can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// Blob reads (`read_to_string`, `modified`).
    Read,
    /// Blob/temp-file writes.
    Write,
    /// Atomic renames (blob installs, stale-lock steals).
    Rename,
    /// File removals (GC, temp cleanup, lock release).
    Remove,
    /// Directory listings (key enumeration, GC sweeps).
    List,
    /// Lock-file creation.
    Lock,
}

const FAULT_OPS: usize = 6;

impl FaultOp {
    fn index(self) -> usize {
        match self {
            FaultOp::Read => 0,
            FaultOp::Write => 1,
            FaultOp::Rename => 2,
            FaultOp::Remove => 3,
            FaultOp::List => 4,
            FaultOp::Lock => 5,
        }
    }

    fn name(self) -> &'static str {
        match self {
            FaultOp::Read => "read",
            FaultOp::Write => "write",
            FaultOp::Rename => "rename",
            FaultOp::Remove => "remove",
            FaultOp::List => "list",
            FaultOp::Lock => "lock",
        }
    }
}

/// Fault configuration for one operation class.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct OpFaults {
    /// Probability in `[0, 1]` that each operation fails (clamped).
    #[serde(default)]
    pub error_prob: f64,
    /// Fail the first N operations of this class unconditionally, then
    /// stop injecting from this schedule.
    #[serde(default)]
    pub fail_first: usize,
    /// Error kinds to draw from (uniformly); empty means
    /// [`FaultKind::Interrupted`].
    #[serde(default)]
    pub kinds: Vec<FaultKind>,
}

impl OpFaults {
    fn is_active(&self) -> bool {
        self.error_prob > 0.0 || self.fail_first > 0
    }
}

/// A serde-typed, seed-reproducible fault schedule.
///
/// Missing fields default to "no faults", so a plan JSON only names the
/// operation classes it targets:
///
/// ```json
/// {
///   "read":  { "error_prob": 0.2, "kinds": ["Interrupted"] },
///   "write": { "error_prob": 0.2, "fail_first": 3,
///              "kinds": ["WouldBlock", "StorageFull"] },
///   "torn_write_prob": 0.1
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Faults for blob reads.
    #[serde(default)]
    pub read: OpFaults,
    /// Faults for writes.
    #[serde(default)]
    pub write: OpFaults,
    /// Faults for renames.
    #[serde(default)]
    pub rename: OpFaults,
    /// Faults for removals.
    #[serde(default)]
    pub remove: OpFaults,
    /// Faults for directory listings.
    #[serde(default)]
    pub list: OpFaults,
    /// Faults for lock-file creation.
    #[serde(default)]
    pub lock: OpFaults,
    /// Probability in `[0, 1]` that a *successful* write persists only
    /// a truncated prefix (torn write; clamped).
    #[serde(default)]
    pub torn_write_prob: f64,
}

impl FaultPlan {
    /// Parses a plan from its JSON representation.
    ///
    /// # Errors
    ///
    /// A human-readable message when the JSON does not describe a plan.
    pub fn from_json(json: &str) -> Result<FaultPlan, String> {
        serde_json::from_str(json).map_err(|e| format!("invalid fault plan: {e}"))
    }

    fn op(&self, op: FaultOp) -> &OpFaults {
        match op {
            FaultOp::Read => &self.read,
            FaultOp::Write => &self.write,
            FaultOp::Rename => &self.rename,
            FaultOp::Remove => &self.remove,
            FaultOp::List => &self.list,
            FaultOp::Lock => &self.lock,
        }
    }
}

/// Mutable injection state: one RNG stream plus per-class `fail_first`
/// progress, behind one mutex so concurrent store users observe a
/// single global fault sequence.
#[derive(Debug)]
struct FaultState {
    rng: ChaCha8Rng,
    fired_first: [usize; FAULT_OPS],
}

/// A [`Backend`] decorator that injects faults per a [`FaultPlan`].
///
/// All successful operations are delegated to the wrapped backend;
/// injected failures never touch it (except torn writes, which persist
/// their truncated prefix through it). Every injection bumps
/// [`Counter::FaultInjected`].
#[derive(Debug)]
pub struct FaultyBackend {
    inner: Arc<dyn Backend>,
    plan: FaultPlan,
    state: Mutex<FaultState>,
}

impl FaultyBackend {
    /// Wraps `inner` with `plan`, seeding the fault stream from `seed`.
    #[must_use]
    pub fn new(inner: Arc<dyn Backend>, plan: FaultPlan, seed: u64) -> FaultyBackend {
        FaultyBackend {
            inner,
            plan,
            state: Mutex::new(FaultState {
                rng: ChaCha8Rng::seed_from_u64(seed),
                fired_first: [0; FAULT_OPS],
            }),
        }
    }

    /// Decides whether this operation faults; `Some` is the injected
    /// error.
    fn inject(&self, op: FaultOp) -> Option<io::Error> {
        let faults = self.plan.op(op);
        if !faults.is_active() {
            return None;
        }
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let fired = &mut state.fired_first[op.index()];
        let forced = *fired < faults.fail_first;
        if forced {
            *fired += 1;
        } else {
            let p = faults.error_prob.clamp(0.0, 1.0);
            if p <= 0.0 || !state.rng.gen_bool(p) {
                return None;
            }
        }
        let kind = if faults.kinds.is_empty() {
            FaultKind::Interrupted
        } else {
            faults.kinds[state.rng.gen_range(0..faults.kinds.len())]
        };
        counters::bump(Counter::FaultInjected);
        Some(io::Error::new(
            kind.io_kind(),
            format!("injected {} fault ({kind:?})", op.name()),
        ))
    }

    /// Decides whether a successful write is torn (persist a prefix).
    fn torn(&self) -> bool {
        let p = self.plan.torn_write_prob.clamp(0.0, 1.0);
        if p <= 0.0 {
            return false;
        }
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.rng.gen_bool(p)
    }
}

impl Backend for FaultyBackend {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        // Never faulted: see module docs.
        self.inner.create_dir_all(path)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        if let Some(e) = self.inject(FaultOp::Write) {
            return Err(e);
        }
        if self.torn() {
            counters::bump(Counter::FaultInjected);
            // The torn write *reports* success: the caller proceeds to
            // install a blob whose checksum cannot verify, exactly like
            // a crash after rename but before the data hit the platter.
            return self.inner.write(path, &data[..data.len() / 2]);
        }
        self.inner.write(path, data)
    }

    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        if let Some(e) = self.inject(FaultOp::Read) {
            return Err(e);
        }
        self.inner.read_to_string(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        if let Some(e) = self.inject(FaultOp::Rename) {
            return Err(e);
        }
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        if let Some(e) = self.inject(FaultOp::Remove) {
            return Err(e);
        }
        self.inner.remove_file(path)
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<DirEntryInfo>> {
        if let Some(e) = self.inject(FaultOp::List) {
            return Err(e);
        }
        self.inner.list_dir(path)
    }

    fn modified(&self, path: &Path) -> io::Result<SystemTime> {
        if let Some(e) = self.inject(FaultOp::Read) {
            return Err(e);
        }
        self.inner.modified(path)
    }

    fn create_lock_file(&self, path: &Path) -> io::Result<()> {
        if let Some(e) = self.inject(FaultOp::Lock) {
            return Err(e);
        }
        self.inner.create_lock_file(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::FsBackend;
    use std::path::PathBuf;

    fn plan_with_write_faults() -> FaultPlan {
        FaultPlan {
            write: OpFaults {
                error_prob: 0.5,
                fail_first: 2,
                kinds: vec![FaultKind::Interrupted, FaultKind::StorageFull],
            },
            ..FaultPlan::default()
        }
    }

    #[test]
    fn fault_sequence_is_reproducible_from_seed() {
        let mk = |seed| FaultyBackend::new(Arc::new(FsBackend), plan_with_write_faults(), seed);
        let observe = |backend: &FaultyBackend| -> Vec<Option<io::ErrorKind>> {
            (0..64)
                .map(|_| backend.inject(FaultOp::Write).map(|e| e.kind()))
                .collect()
        };
        let a = observe(&mk(7));
        let b = observe(&mk(7));
        let c = observe(&mk(8));
        assert_eq!(a, b, "same seed, same fault sequence");
        assert_ne!(a, c, "different seed, different sequence");
        // fail_first: the first two injections are unconditional.
        assert!(a[0].is_some() && a[1].is_some());
    }

    #[test]
    fn inactive_ops_never_fault_and_consume_no_randomness() {
        let backend = FaultyBackend::new(Arc::new(FsBackend), plan_with_write_faults(), 1);
        let before: Vec<_> = (0..8)
            .map(|_| backend.inject(FaultOp::Write).map(|e| e.kind()))
            .collect();
        let backend = FaultyBackend::new(Arc::new(FsBackend), plan_with_write_faults(), 1);
        for _ in 0..100 {
            assert!(backend.inject(FaultOp::Read).is_none());
            assert!(backend.inject(FaultOp::Lock).is_none());
        }
        let after: Vec<_> = (0..8)
            .map(|_| backend.inject(FaultOp::Write).map(|e| e.kind()))
            .collect();
        assert_eq!(before, after, "inactive ops must not perturb the stream");
    }

    #[test]
    fn torn_write_persists_truncated_prefix() {
        let plan = FaultPlan {
            torn_write_prob: 1.0,
            ..FaultPlan::default()
        };
        let backend = FaultyBackend::new(Arc::new(FsBackend), plan, 42);
        let path = PathBuf::from(std::env::temp_dir())
            .join(format!("incdes-fault-torn-{}", std::process::id()));
        backend
            .write(&path, b"0123456789")
            .expect("torn write reports success");
        let on_disk = std::fs::read(&path).unwrap();
        assert_eq!(on_disk, b"01234", "only the prefix persisted");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn plan_json_roundtrip_with_defaults() {
        let json = r#"{
            "write": { "error_prob": 0.25, "kinds": ["WouldBlock"] },
            "torn_write_prob": 0.1
        }"#;
        let plan = FaultPlan::from_json(json).expect("plan parses");
        assert_eq!(plan.write.error_prob, 0.25);
        assert_eq!(plan.write.kinds, vec![FaultKind::WouldBlock]);
        assert_eq!(plan.read, OpFaults::default(), "missing ops default off");
        assert_eq!(plan.torn_write_prob, 0.1);
        assert!(FaultPlan::from_json("[1,2]").is_err());
    }

    #[test]
    fn transient_taxonomy_matches_kinds() {
        for kind in [
            FaultKind::WouldBlock,
            FaultKind::Interrupted,
            FaultKind::TimedOut,
        ] {
            assert!(FaultKind::is_transient(kind.io_kind()), "{kind:?}");
        }
        for kind in [
            FaultKind::StorageFull,
            FaultKind::PermissionDenied,
            FaultKind::Other,
        ] {
            assert!(!FaultKind::is_transient(kind.io_kind()), "{kind:?}");
        }
    }
}
