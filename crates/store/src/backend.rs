//! The filesystem seam: every byte the store reads or writes goes
//! through a [`Backend`], so fault injection (see [`crate::fault`]) and
//! future remote blob backends slot in without touching store logic.
//!
//! The trait is deliberately narrow — exactly the operations
//! [`crate::Store`] performs, no more. [`FsBackend`] is the default
//! std::fs implementation and carries no state.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;
use std::time::SystemTime;

/// One directory entry as reported by [`Backend::list_dir`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntryInfo {
    /// The entry's file name (no path components).
    pub name: String,
    /// Whether the entry is a directory.
    pub is_dir: bool,
}

/// The store's view of a filesystem.
///
/// Implementations must be thread-safe: one `Store` (and its clones) may
/// be driven from many worker threads at once. Semantics mirror the
/// corresponding `std::fs` calls; error kinds are part of the contract
/// (`NotFound` from [`Backend::read_to_string`] means "no blob",
/// `AlreadyExists` from [`Backend::create_lock_file`] means "lock
/// held").
pub trait Backend: fmt::Debug + Send + Sync {
    /// Recursively creates `path` and its parents (`fs::create_dir_all`).
    ///
    /// # Errors
    ///
    /// I/O errors creating the directories.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;

    /// Writes `data` to `path`, replacing any existing file
    /// (`fs::write`).
    ///
    /// # Errors
    ///
    /// I/O errors writing the file.
    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()>;

    /// Reads `path` as UTF-8 (`fs::read_to_string`).
    ///
    /// # Errors
    ///
    /// `NotFound` when absent; other I/O errors otherwise.
    fn read_to_string(&self, path: &Path) -> io::Result<String>;

    /// Atomically renames `from` to `to` (`fs::rename`).
    ///
    /// # Errors
    ///
    /// I/O errors performing the rename.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Removes the file at `path` (`fs::remove_file`).
    ///
    /// # Errors
    ///
    /// `NotFound` when absent; other I/O errors otherwise.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Lists the entries of the directory at `path`.
    ///
    /// # Errors
    ///
    /// I/O errors reading the directory.
    fn list_dir(&self, path: &Path) -> io::Result<Vec<DirEntryInfo>>;

    /// The last-modified time of `path`.
    ///
    /// # Errors
    ///
    /// I/O errors reading the metadata.
    fn modified(&self, path: &Path) -> io::Result<SystemTime>;

    /// Creates the file at `path` failing if it already exists
    /// (`create_new` semantics — the primitive behind the advisory
    /// lock).
    ///
    /// # Errors
    ///
    /// `AlreadyExists` when the file is present; other I/O errors
    /// otherwise.
    fn create_lock_file(&self, path: &Path) -> io::Result<()>;
}

/// The default backend: plain `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct FsBackend;

impl Backend for FsBackend {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::create_dir_all(path)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        fs::write(path, data)
    }

    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        fs::read_to_string(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<DirEntryInfo>> {
        let mut entries = Vec::new();
        for entry in fs::read_dir(path)? {
            let entry = entry?;
            entries.push(DirEntryInfo {
                name: entry.file_name().to_string_lossy().into_owned(),
                is_dir: entry.file_type()?.is_dir(),
            });
        }
        // read_dir order is platform-dependent; sorted listings keep
        // every sweep (and every injected fault schedule) reproducible.
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(entries)
    }

    fn modified(&self, path: &Path) -> io::Result<SystemTime> {
        fs::metadata(path)?.modified()
    }

    fn create_lock_file(&self, path: &Path) -> io::Result<()> {
        fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(path)
            .map(|_| ())
    }
}
