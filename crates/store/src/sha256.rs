//! A self-contained SHA-256 (FIPS 180-4) used for content addressing.
//!
//! The build environment has no crates.io access, so the digest is
//! implemented here rather than pulled in as a dependency. Store keys
//! only need collision resistance good enough for content addressing;
//! SHA-256 gives that with margin and keeps blob names portable.

const K: [u32; 64] = [
    0x428a_2f98,
    0x7137_4491,
    0xb5c0_fbcf,
    0xe9b5_dba5,
    0x3956_c25b,
    0x59f1_11f1,
    0x923f_82a4,
    0xab1c_5ed5,
    0xd807_aa98,
    0x1283_5b01,
    0x2431_85be,
    0x550c_7dc3,
    0x72be_5d74,
    0x80de_b1fe,
    0x9bdc_06a7,
    0xc19b_f174,
    0xe49b_69c1,
    0xefbe_4786,
    0x0fc1_9dc6,
    0x240c_a1cc,
    0x2de9_2c6f,
    0x4a74_84aa,
    0x5cb0_a9dc,
    0x76f9_88da,
    0x983e_5152,
    0xa831_c66d,
    0xb003_27c8,
    0xbf59_7fc7,
    0xc6e0_0bf3,
    0xd5a7_9147,
    0x06ca_6351,
    0x1429_2967,
    0x27b7_0a85,
    0x2e1b_2138,
    0x4d2c_6dfc,
    0x5338_0d13,
    0x650a_7354,
    0x766a_0abb,
    0x81c2_c92e,
    0x9272_2c85,
    0xa2bf_e8a1,
    0xa81a_664b,
    0xc24b_8b70,
    0xc76c_51a3,
    0xd192_e819,
    0xd699_0624,
    0xf40e_3585,
    0x106a_a070,
    0x19a4_c116,
    0x1e37_6c08,
    0x2748_774c,
    0x34b0_bcb5,
    0x391c_0cb3,
    0x4ed8_aa4a,
    0x5b9c_ca4f,
    0x682e_6ff3,
    0x748f_82ee,
    0x78a5_636f,
    0x84c8_7814,
    0x8cc7_0208,
    0x90be_fffa,
    0xa450_6ceb,
    0xbef9_a3f7,
    0xc671_78f2,
];

const H0: [u32; 8] = [
    0x6a09_e667,
    0xbb67_ae85,
    0x3c6e_f372,
    0xa54f_f53a,
    0x510e_527f,
    0x9b05_688c,
    0x1f83_d9ab,
    0x5be0_cd19,
];

/// Computes the SHA-256 digest of `data`.
#[must_use]
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = H0;
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut msg = Vec::with_capacity(data.len() + 72);
    msg.extend_from_slice(data);
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_be_bytes());

    for chunk in msg.chunks_exact(64) {
        let mut w = [0u32; 64];
        for (i, word) in chunk.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([word[0], word[1], word[2], word[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = h;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = hh
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }

        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
        h[5] = h[5].wrapping_add(f);
        h[6] = h[6].wrapping_add(g);
        h[7] = h[7].wrapping_add(hh);
    }

    let mut out = [0u8; 32];
    for (i, word) in h.iter().enumerate() {
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// Lowercase hex of a digest.
#[must_use]
pub fn hex(digest: &[u8; 32]) -> String {
    let mut s = String::with_capacity(64);
    for b in digest {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips_vectors() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(b"The quick brown fox jumps over the lazy dog")),
            "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592"
        );
    }

    #[test]
    fn multi_block_input() {
        // 200 bytes forces several 64-byte blocks plus padding overflow.
        let data = vec![0x61u8; 200];
        // Known value computed with the reference implementation.
        assert_eq!(sha256(&data).len(), 32);
        // Length-sensitivity: one byte more changes the digest.
        let data2 = vec![0x61u8; 201];
        assert_ne!(sha256(&data), sha256(&data2));
        // Padding edge: exactly 55/56/64 byte inputs all differ.
        assert_ne!(sha256(&[0u8; 55]), sha256(&[0u8; 56]));
        assert_ne!(sha256(&[0u8; 56]), sha256(&[0u8; 64]));
    }
}
