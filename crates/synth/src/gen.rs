//! The random system generator.

use incdes_model::{
    Application, Architecture, BusConfig, FutureProfile, Histogram, Message, PeId, Process,
    ProcessGraph, Time,
};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Distribution parameters of the generator.
///
/// The defaults describe the scale used throughout the repository's
/// experiments: a 10-node TTP architecture and harmonic periods, sized so
/// that an "existing 400 processes + current up to 320" system lands at a
/// realistic utilization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthConfig {
    /// Number of processing elements.
    pub pe_count: u32,
    /// TDMA slot length (one slot per PE per round).
    pub slot_length: Time,
    /// Rounds per bus cycle.
    pub rounds: usize,
    /// Bus rate in bytes per tick.
    pub bytes_per_tick: u32,
    /// Harmonic period set; every period must be a multiple of the bus
    /// cycle (`pe_count · slot_length · rounds`).
    pub periods: Vec<Time>,
    /// Inclusive range of processes per process graph.
    pub graph_size: (usize, usize),
    /// Inclusive range of graph depth (number of layers).
    pub depth: (usize, usize),
    /// Inclusive range of the base WCET of a process.
    pub wcet: (u64, u64),
    /// Probability that a given PE is allowed for a process (at least one
    /// is always allowed).
    pub pe_allow_prob: f64,
    /// Heterogeneity: per-PE WCET factor drawn from `[1−s, 1+s]`.
    pub wcet_spread: f64,
    /// Inclusive range of message payload sizes in bytes. The maximum must
    /// fit a slot at the configured rate.
    pub msg_bytes: (u32, u32),
    /// Probability of an extra cross-layer edge per node.
    pub edge_extra_prob: f64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            pe_count: 10,
            slot_length: Time::new(8),
            rounds: 1,
            bytes_per_tick: 8,
            periods: vec![Time::new(480), Time::new(960)],
            graph_size: (10, 25),
            depth: (2, 4),
            wcet: (2, 9),
            pe_allow_prob: 0.5,
            wcet_spread: 0.3,
            msg_bytes: (2, 8),
            edge_extra_prob: 0.15,
        }
    }
}

/// Error from the generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthError {
    /// A configuration field is degenerate (empty range, zero count, ...).
    BadConfig(&'static str),
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::BadConfig(what) => write!(f, "bad generator configuration: {what}"),
        }
    }
}

impl std::error::Error for SynthError {}

impl SynthConfig {
    /// The bus cycle length implied by the configuration.
    pub fn cycle_length(&self) -> Time {
        Time::new(self.pe_count as u64 * self.slot_length.ticks() * self.rounds as u64)
    }

    fn check(&self) -> Result<(), SynthError> {
        if self.pe_count == 0 {
            return Err(SynthError::BadConfig("pe_count is zero"));
        }
        if self.slot_length.is_zero() || self.rounds == 0 {
            return Err(SynthError::BadConfig("empty bus cycle"));
        }
        if self.bytes_per_tick == 0 {
            return Err(SynthError::BadConfig("bytes_per_tick is zero"));
        }
        if self.periods.is_empty() {
            return Err(SynthError::BadConfig("no periods"));
        }
        let cycle = self.cycle_length();
        for p in &self.periods {
            if p.is_zero() || !(*p % cycle).is_zero() {
                return Err(SynthError::BadConfig(
                    "period not a multiple of the bus cycle",
                ));
            }
        }
        if self.graph_size.0 == 0 || self.graph_size.0 > self.graph_size.1 {
            return Err(SynthError::BadConfig("bad graph size range"));
        }
        if self.depth.0 == 0 || self.depth.0 > self.depth.1 {
            return Err(SynthError::BadConfig("bad depth range"));
        }
        if self.wcet.0 == 0 || self.wcet.0 > self.wcet.1 {
            return Err(SynthError::BadConfig("bad WCET range"));
        }
        if !(0.0..=1.0).contains(&self.pe_allow_prob) || !(0.0..1.0).contains(&self.wcet_spread) {
            return Err(SynthError::BadConfig("bad probability"));
        }
        if self.msg_bytes.0 > self.msg_bytes.1 {
            return Err(SynthError::BadConfig("bad message size range"));
        }
        let max_tx = (self.msg_bytes.1 as u64).div_ceil(self.bytes_per_tick as u64);
        if max_tx > self.slot_length.ticks() {
            return Err(SynthError::BadConfig("largest message exceeds the slot"));
        }
        Ok(())
    }
}

/// Builds the architecture described by `cfg`.
///
/// # Errors
///
/// [`SynthError::BadConfig`] if the configuration is degenerate.
pub fn generate_architecture(cfg: &SynthConfig) -> Result<Architecture, SynthError> {
    cfg.check()?;
    let mut b = Architecture::builder();
    for i in 0..cfg.pe_count {
        b = b.pe(format!("N{i}"));
    }
    let bus = BusConfig::uniform_round(cfg.pe_count, cfg.slot_length, cfg.rounds)
        .map_err(|_| SynthError::BadConfig("bus rejected"))?;
    let bus = BusConfig::new(bus.rounds, cfg.bytes_per_tick)
        .map_err(|_| SynthError::BadConfig("bus rejected"))?;
    b.bus(bus)
        .build()
        .map_err(|_| SynthError::BadConfig("architecture rejected"))
}

/// Generates one process graph of exactly `size` processes.
///
/// The graph is layered: each non-root node receives one parent from the
/// previous layer (guaranteeing a DAG with bounded depth) plus extra
/// cross-layer edges with probability [`SynthConfig::edge_extra_prob`].
///
/// # Errors
///
/// [`SynthError::BadConfig`] if the configuration is degenerate.
pub fn generate_graph<R: Rng>(
    cfg: &SynthConfig,
    name: &str,
    size: usize,
    rng: &mut R,
) -> Result<ProcessGraph, SynthError> {
    cfg.check()?;
    if size == 0 {
        return Err(SynthError::BadConfig("graph size is zero"));
    }
    let period = cfg.periods[rng.gen_range(0..cfg.periods.len())];
    let mut g = ProcessGraph::new(name, period, period);

    // Layer assignment: layer 0 gets the first node; the rest are spread
    // uniformly over `depth` layers.
    let depth = rng.gen_range(cfg.depth.0..=cfg.depth.1).min(size);
    let mut layer_of = Vec::with_capacity(size);
    let mut layers: Vec<Vec<usize>> = vec![Vec::new(); depth];
    for i in 0..size {
        let l = if i < depth {
            i
        } else {
            rng.gen_range(0..depth)
        };
        layer_of.push(l);
        layers[l].push(i);
    }

    // Processes with heterogeneous WCETs.
    let mut nodes = Vec::with_capacity(size);
    for i in 0..size {
        let base = rng.gen_range(cfg.wcet.0..=cfg.wcet.1);
        let mut p = Process::new(format!("{name}.p{i}"));
        let mut any = false;
        for pe in 0..cfg.pe_count {
            if rng.gen_bool(cfg.pe_allow_prob) {
                let factor = 1.0 + rng.gen_range(-cfg.wcet_spread..=cfg.wcet_spread);
                let w = ((base as f64 * factor).round() as u64).max(1);
                p = p.wcet(PeId(pe), Time::new(w));
                any = true;
            }
        }
        if !any {
            let pe = rng.gen_range(0..cfg.pe_count);
            p = p.wcet(PeId(pe), Time::new(base));
        }
        nodes.push(g.add_process(p));
    }

    // Structural edges: one parent from the previous layer per node.
    let mut edge_no = 0usize;
    for l in 1..depth {
        for &i in &layers[l] {
            let parents = &layers[l - 1];
            let parent = parents[rng.gen_range(0..parents.len())];
            let bytes = rng.gen_range(cfg.msg_bytes.0..=cfg.msg_bytes.1);
            g.add_message(
                nodes[parent],
                nodes[i],
                Message::new(format!("m{edge_no}"), bytes),
            )
            .expect("node ids are valid");
            edge_no += 1;
        }
    }
    // Extra forward edges.
    for i in 0..size {
        if layer_of[i] == 0 || !rng.gen_bool(cfg.edge_extra_prob) {
            continue;
        }
        let earlier: Vec<usize> = (0..size).filter(|&j| layer_of[j] < layer_of[i]).collect();
        if let Some(&src) = earlier.get(rng.gen_range(0..earlier.len())) {
            let bytes = rng.gen_range(cfg.msg_bytes.0..=cfg.msg_bytes.1);
            g.add_message(
                nodes[src],
                nodes[i],
                Message::new(format!("m{edge_no}"), bytes),
            )
            .expect("node ids are valid");
            edge_no += 1;
        }
    }
    Ok(g)
}

/// Generates an application of exactly `process_count` processes, split
/// into graphs whose sizes are drawn from [`SynthConfig::graph_size`].
///
/// # Errors
///
/// [`SynthError::BadConfig`] if the configuration is degenerate or
/// `process_count` is zero.
pub fn generate_application<R: Rng>(
    cfg: &SynthConfig,
    name: &str,
    process_count: usize,
    rng: &mut R,
) -> Result<Application, SynthError> {
    cfg.check()?;
    if process_count == 0 {
        return Err(SynthError::BadConfig("process count is zero"));
    }
    let mut graphs = Vec::new();
    let mut remaining = process_count;
    let mut gi = 0usize;
    while remaining > 0 {
        let lo = cfg.graph_size.0.min(remaining);
        let hi = cfg.graph_size.1.min(remaining);
        let mut size = rng.gen_range(lo..=hi);
        // Avoid leaving a tail smaller than the minimum graph size.
        if remaining - size != 0 && remaining - size < cfg.graph_size.0 {
            size = remaining;
        }
        graphs.push(generate_graph(cfg, &format!("{name}.g{gi}"), size, rng)?);
        remaining -= size;
        gi += 1;
    }
    Ok(Application::new(name, graphs))
}

/// Multiplier between the largest current-application WCET and the
/// largest expected future WCET. Slide 10 characterizes future
/// applications by WCETs substantially larger than a typical current
/// process (20–150 units) — large future processes are what make the
/// slack-*clustering* criterion C1 bite.
pub const FUTURE_WCET_FACTOR: u64 = 3;

/// The range of *future* process WCETs implied by a generator
/// configuration: from the small end of the current range up to
/// [`FUTURE_WCET_FACTOR`] times its large end.
pub fn future_wcet_range(cfg: &SynthConfig) -> (u64, u64) {
    (cfg.wcet.0, cfg.wcet.1 * FUTURE_WCET_FACTOR)
}

/// The future-application family profile consistent with `cfg`, for a
/// most-demanding future application of `process_count` processes.
///
/// * `t_min` — the smallest period of the generator;
/// * `t_need` — `process_count ·` mean histogram WCET (the whole future
///   application re-arrives every `t_min`);
/// * `b_need` — expected bus demand: roughly one message per non-root
///   process, of mean histogram size, of which about half cross PEs;
/// * histograms — four values with falling probabilities (slide 10's
///   shape); process WCETs span [`future_wcet_range`], reaching well above
///   the current applications' sizes so the C1 clustering metric is
///   meaningful.
pub fn future_profile_for(cfg: &SynthConfig, process_count: usize) -> FutureProfile {
    let t_min = cfg.periods.iter().copied().min().unwrap_or(Time::new(1));
    let (w_lo, w_hi) = future_wcet_range(cfg);
    let wcet_hist = spread_histogram_u64(w_lo, w_hi);
    let msg_hist = spread_histogram_u32(cfg.msg_bytes.0, cfg.msg_bytes.1);
    let mean_wcet: f64 = wcet_hist
        .probabilities()
        .into_iter()
        .map(|(v, p)| v.as_f64() * p)
        .sum();
    let mean_msg: f64 = msg_hist
        .probabilities()
        .into_iter()
        .map(|(v, p)| v as f64 * p)
        .sum();
    let t_need = Time::new((process_count as f64 * mean_wcet).round() as u64);
    let tx_per_byte = 1.0 / cfg.bytes_per_tick as f64;
    let b_need = Time::new((process_count as f64 * mean_msg * tx_per_byte * 0.5).round() as u64);
    FutureProfile::new(t_min, t_need, b_need, wcet_hist, msg_hist)
}

fn spread_histogram_u64(lo: u64, hi: u64) -> Histogram<Time> {
    let vals = four_points(lo, hi);
    Histogram::new(vec![
        (Time::new(vals[0]), 0.40),
        (Time::new(vals[1]), 0.30),
        (Time::new(vals[2]), 0.20),
        (Time::new(vals[3]), 0.10),
    ])
    .expect("static weights are valid")
}

fn spread_histogram_u32(lo: u32, hi: u32) -> Histogram<u32> {
    let vals = four_points(lo as u64, hi as u64);
    Histogram::new(vec![
        (vals[0] as u32, 0.35),
        (vals[1] as u32, 0.30),
        (vals[2] as u32, 0.20),
        (vals[3] as u32, 0.15),
    ])
    .expect("static weights are valid")
}

fn four_points(lo: u64, hi: u64) -> [u64; 4] {
    let span = hi.saturating_sub(lo);
    [lo, lo + span / 3, lo + span * 2 / 3, hi]
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdes_model::validate;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn default_config_is_valid() {
        assert!(SynthConfig::default().check().is_ok());
        assert_eq!(SynthConfig::default().cycle_length(), Time::new(80));
    }

    #[test]
    fn bad_configs_rejected() {
        let c = SynthConfig {
            pe_count: 0,
            ..SynthConfig::default()
        };
        assert!(matches!(
            generate_architecture(&c),
            Err(SynthError::BadConfig(_))
        ));

        // Not a multiple of the 80-tick cycle.
        let c = SynthConfig {
            periods: vec![Time::new(100)],
            ..SynthConfig::default()
        };
        assert!(c.check().is_err());

        // Bigger than the slot.
        let c = SynthConfig {
            msg_bytes: (2, 100),
            ..SynthConfig::default()
        };
        assert!(c.check().is_err());

        let c = SynthConfig {
            wcet: (0, 5),
            ..SynthConfig::default()
        };
        assert!(c.check().is_err());
    }

    #[test]
    fn architecture_matches_config() {
        let cfg = SynthConfig::default();
        let arch = generate_architecture(&cfg).unwrap();
        assert_eq!(arch.pe_count(), 10);
        assert_eq!(arch.bus().cycle_length(), Time::new(80));
        assert_eq!(arch.bus().bytes_per_tick, 8);
    }

    #[test]
    fn graph_is_valid_and_sized() {
        let cfg = SynthConfig::default();
        let arch = generate_architecture(&cfg).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for size in [1usize, 2, 5, 20] {
            let g = generate_graph(&cfg, "t", size, &mut rng).unwrap();
            assert_eq!(g.process_count(), size);
            assert!(g.is_acyclic());
            let app = Application::new("t", vec![g]);
            validate::check_application(&app, &arch).unwrap();
        }
    }

    #[test]
    fn application_exact_process_count() {
        let cfg = SynthConfig::default();
        let arch = generate_architecture(&cfg).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for n in [1usize, 7, 40, 163, 400] {
            let app = generate_application(&cfg, "a", n, &mut rng).unwrap();
            assert_eq!(app.process_count(), n, "requested {n}");
            validate::check_application(&app, &arch).unwrap();
            // No graph smaller than the configured minimum unless the app
            // itself is smaller.
            for g in &app.graphs {
                assert!(g.process_count() >= cfg.graph_size.0.min(n));
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = SynthConfig::default();
        let a = generate_application(&cfg, "a", 60, &mut ChaCha8Rng::seed_from_u64(42)).unwrap();
        let b = generate_application(&cfg, "a", 60, &mut ChaCha8Rng::seed_from_u64(42)).unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        let c = generate_application(&cfg, "a", 60, &mut ChaCha8Rng::seed_from_u64(43)).unwrap();
        assert_ne!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&c).unwrap()
        );
    }

    #[test]
    fn future_profile_shape() {
        let cfg = SynthConfig::default();
        let p = future_profile_for(&cfg, 80);
        assert_eq!(p.t_min, Time::new(480));
        // Future WCET range (2, 9*3=27): values 2,10,18,27, weights
        // .4/.3/.2/.1 → mean 10.1 → t_need = 80 * 10.1 = 808.
        assert_eq!(p.t_need, Time::new(808));
        assert_eq!(p.wcet_hist.bins()[3].0, Time::new(27));
        assert!(p.b_need.ticks() > 0);
        assert_eq!(p.wcet_hist.bins().len(), 4);
    }

    #[test]
    fn periods_drawn_from_config() {
        let cfg = SynthConfig::default();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let app = generate_application(&cfg, "a", 200, &mut rng).unwrap();
        for g in &app.graphs {
            assert!(cfg.periods.contains(&g.period));
            assert_eq!(g.deadline, g.period);
        }
    }
}
