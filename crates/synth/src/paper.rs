//! The experiment presets of the DAC 2001 evaluation.
//!
//! Slides 15–17: systems with *existing applications totalling 400
//! processes*, current applications of 40–320 processes, and future
//! applications of 80 processes. The paper does not publish the raw
//! generator parameters; [`dac2001`] fixes a parameterization at a
//! comparable scale, and [`dac2001_small`] is a scaled-down variant for
//! quick runs and CI.

use crate::gen::SynthConfig;
use incdes_model::Time;
use serde::{Deserialize, Serialize};

/// A complete experiment parameterization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PaperPreset {
    /// Generator configuration.
    pub cfg: SynthConfig,
    /// Total processes across the existing applications.
    pub existing_processes: usize,
    /// Processes per existing application (existing apps are committed one
    /// by one to build up the frozen system).
    pub existing_app_size: usize,
    /// Current-application sizes (the x axis of the figures).
    pub current_sizes: Vec<usize>,
    /// Processes in a future application (figure 3).
    pub future_processes: usize,
    /// Random seeds (one system instance each).
    pub seeds: Vec<u64>,
}

impl PaperPreset {
    /// Generator configuration for *future* applications: like the current
    /// applications but with WCETs spanning [`crate::gen::future_wcet_range`]
    /// (slide 10 characterizes future processes as substantially larger).
    pub fn future_cfg(&self) -> SynthConfig {
        SynthConfig {
            wcet: crate::gen::future_wcet_range(&self.cfg),
            ..self.cfg.clone()
        }
    }
}

/// The full-scale preset: existing 400, current ∈ {40, 80, 160, 240, 320},
/// future 80 — the x axes of slides 15–17.
pub fn dac2001() -> PaperPreset {
    PaperPreset {
        cfg: SynthConfig::default(),
        existing_processes: 400,
        existing_app_size: 50,
        current_sizes: vec![40, 80, 160, 240, 320],
        future_processes: 80,
        seeds: vec![11, 23, 47, 83, 131],
    }
}

/// A scaled-down preset for tests and quick benchmark runs: existing 160,
/// current ∈ {10, 20, 40}, future 25.
pub fn dac2001_small() -> PaperPreset {
    PaperPreset {
        cfg: SynthConfig {
            pe_count: 4,
            slot_length: Time::new(8),
            rounds: 1,
            bytes_per_tick: 8,
            periods: vec![Time::new(320), Time::new(640)],
            graph_size: (5, 12),
            depth: (2, 3),
            wcet: (2, 8),
            pe_allow_prob: 0.6,
            wcet_spread: 0.3,
            msg_bytes: (2, 8),
            edge_extra_prob: 0.1,
        },
        existing_processes: 160,
        existing_app_size: 40,
        current_sizes: vec![10, 20, 40],
        future_processes: 25,
        seeds: vec![5, 17],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_application, generate_architecture};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn presets_generate_valid_systems() {
        for preset in [dac2001(), dac2001_small()] {
            let arch = generate_architecture(&preset.cfg).unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(preset.seeds[0]);
            let app = generate_application(&preset.cfg, "e0", preset.existing_app_size, &mut rng)
                .unwrap();
            incdes_model::validate::check_application(&app, &arch).unwrap();
        }
    }

    #[test]
    fn full_preset_matches_paper_axes() {
        let p = dac2001();
        assert_eq!(p.existing_processes, 400);
        assert_eq!(p.current_sizes, vec![40, 80, 160, 240, 320]);
        assert_eq!(p.future_processes, 80);
    }

    #[test]
    fn small_preset_periods_align_with_cycle() {
        let p = dac2001_small();
        let cycle = p.cfg.cycle_length();
        for period in &p.cfg.periods {
            assert!((*period % cycle).is_zero());
        }
    }
}
