//! Synthetic benchmark generation for the DAC 2001 experiments.
//!
//! The paper evaluates its mapping strategies on randomly generated
//! systems: existing applications totalling 400 processes, current
//! applications of 40–320 processes, and future applications of 80
//! processes, all running on a TTP-style architecture. The original
//! generator was never published; this crate rebuilds it:
//!
//! * [`SynthConfig`] — the distribution parameters (architecture size,
//!   harmonic period set, WCET and message-size ranges, graph shape);
//! * [`generate_architecture`] / [`generate_application`] /
//!   [`generate_graph`] — deterministic generation from a seeded RNG;
//! * [`future_profile_for`] — the [`incdes_model::FutureProfile`] consistent with the
//!   generator's own distributions, as the paper assumes the designer
//!   knows the family of future applications;
//! * [`paper`] — the exact presets used by the figure-regeneration
//!   harness.
//!
//! # Example
//!
//! ```
//! use incdes_synth::{generate_application, generate_architecture, SynthConfig};
//! use rand::SeedableRng;
//!
//! let cfg = SynthConfig::default();
//! let arch = generate_architecture(&cfg).unwrap();
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//! let app = generate_application(&cfg, "existing", 80, &mut rng).unwrap();
//! assert_eq!(app.process_count(), 80);
//! incdes_model::validate::check_application(&app, &arch).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod paper;

pub use gen::{
    future_profile_for, future_wcet_range, generate_application, generate_architecture,
    generate_graph, SynthConfig, SynthError,
};
