//! Property test: `SystemSnapshot` survives a full
//! capture → JSON serialize → parse → restore round trip with an
//! identical schedule table, for randomized (but feasible) systems.

use incdes_core::persist::SystemSnapshot;
use incdes_core::System;
use incdes_mapping::Strategy;
use incdes_metrics::Weights;
use incdes_model::{
    Application, Architecture, BusConfig, FutureProfile, Message, PeId, Process, ProcessGraph, Time,
};
use proptest::prelude::*;

/// Builds a layered chain application from drawn parameters. Every
/// process is executable on every PE so the system stays feasible for
/// reasonable loads.
fn build_app(
    name: &str,
    pe_count: u32,
    wcets: &[u64],
    msg_bytes: &[u32],
    period: u64,
) -> Application {
    let period = Time::new(period);
    let mut g = ProcessGraph::new(format!("{name}-g0"), period, period);
    let mut prev = None;
    for (i, &w) in wcets.iter().enumerate() {
        let mut p = Process::new(format!("{name}-p{i}"));
        for pe in 0..pe_count {
            // Spread WCETs a little per PE so mappings are non-trivial.
            p = p.wcet(PeId(pe), Time::new(1 + w + u64::from(pe)));
        }
        let node = g.add_process(p);
        if let Some(prev) = prev {
            let bytes = msg_bytes[i % msg_bytes.len()].max(1);
            g.add_message(prev, node, Message::new(format!("{name}-m{i}"), bytes))
                .expect("chain edges are acyclic");
        }
        prev = Some(node);
    }
    Application::new(name, vec![g])
}

fn arch_with(pe_count: u32) -> Architecture {
    let mut b = Architecture::builder();
    for i in 0..pe_count {
        b = b.pe(format!("N{i}"));
    }
    b.bus(BusConfig::uniform_round(pe_count, Time::new(10), 1).unwrap())
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// serialize → restore → identical schedule table.
    #[test]
    fn snapshot_json_round_trip_preserves_table(
        pe_count in 2u32..4,
        app_count in 1usize..4,
        wcets in proptest::collection::vec(1u64..6, 2..5),
        msg_bytes in proptest::collection::vec(1u32..8, 4),
        period_factor in 1u64..3,
    ) {
        let mut system = System::new(arch_with(pe_count));
        let future = FutureProfile::slide_example();
        let weights = Weights::default();
        let period = 120 * period_factor;
        for i in 0..app_count {
            let app = build_app(&format!("app{i}"), pe_count, &wcets, &msg_bytes, period);
            if system.add_application(app, &future, &weights, &Strategy::AdHoc).is_err() {
                // Saturated: the committed prefix is still a valid system.
                break;
            }
        }

        let snapshot = SystemSnapshot::capture(&system);
        let json = snapshot.to_json().unwrap();
        let parsed = SystemSnapshot::from_json(&json).unwrap();
        let restored = match parsed.restore() {
            Ok(s) => s,
            Err(e) => return Err(TestCaseError::fail(format!("restore failed: {e}"))),
        };

        prop_assert_eq!(restored.app_count(), system.app_count());
        prop_assert_eq!(restored.horizon(), system.horizon());
        prop_assert_eq!(restored.table(), system.table());

        // And the JSON form itself is stable across a second trip.
        let json2 = SystemSnapshot::capture(&restored).to_json().unwrap();
        prop_assert_eq!(json, json2);
    }
}
