//! Session persistence: save and restore an incremental design session.
//!
//! An incremental design process spans months — version `N` is shipped,
//! and version `N+1` starts from its frozen state. [`SystemSnapshot`] is
//! the serializable form of a [`System`]; round-tripping through it (or
//! through JSON with the `serde` machinery) reproduces the session
//! bit-for-bit, including the committed schedule table.

use crate::system::{CommittedApp, System};
use incdes_mapping::Solution;
use incdes_model::{AppId, Application, Architecture};
use incdes_sched::{Mapping, ScheduleTable, TableError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Serializable snapshot of a [`System`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SystemSnapshot {
    /// The architecture.
    pub arch: Architecture,
    /// Committed applications with their design alternatives and
    /// modification costs, in commit order.
    pub apps: Vec<SnapshotApp>,
    /// The committed schedule table.
    pub table: ScheduleTable,
}

/// One committed application inside a snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SnapshotApp {
    /// The application.
    pub app: Application,
    /// Its committed design alternative.
    pub solution: Solution,
    /// Its modification cost.
    pub modification_cost: f64,
    /// Whether it has been decommissioned.
    #[serde(default)]
    pub retired: bool,
}

/// Error restoring a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum RestoreError {
    /// The stored table does not validate against the stored applications
    /// and mappings (corrupted or hand-edited snapshot).
    Corrupted(TableError),
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::Corrupted(e) => write!(f, "snapshot does not validate: {e}"),
        }
    }
}

impl std::error::Error for RestoreError {}

impl SystemSnapshot {
    /// Captures the current state of a session.
    pub fn capture(system: &System) -> Self {
        SystemSnapshot {
            arch: system.arch().clone(),
            apps: system
                .committed()
                .iter()
                .map(|c| SnapshotApp {
                    app: c.app.clone(),
                    solution: c.solution.clone(),
                    modification_cost: c.modification_cost,
                    retired: c.retired,
                })
                .collect(),
            table: system.table().clone(),
        }
    }

    /// Restores a session, re-validating the stored schedule against the
    /// stored applications.
    ///
    /// # Errors
    ///
    /// [`RestoreError::Corrupted`] if the table fails exhaustive
    /// validation — a snapshot is never trusted blindly.
    pub fn restore(self) -> Result<System, RestoreError> {
        {
            let pairs: Vec<(AppId, &Application, &Mapping)> = self
                .apps
                .iter()
                .enumerate()
                .filter(|(_, a)| !a.retired)
                .map(|(i, a)| (AppId(i as u32), &a.app, &a.solution.mapping))
                .collect();
            self.table
                .validate(&self.arch, &pairs)
                .map_err(RestoreError::Corrupted)?;
        }
        let committed = self
            .apps
            .into_iter()
            .enumerate()
            .map(|(i, a)| CommittedApp {
                id: AppId(i as u32),
                app: a.app,
                solution: a.solution,
                modification_cost: a.modification_cost,
                retired: a.retired,
            })
            .collect();
        Ok(System::from_parts(self.arch, committed, self.table))
    }

    /// Serializes to a JSON string.
    ///
    /// # Errors
    ///
    /// Propagates `serde_json` failures (effectively unreachable for this
    /// data model).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Deserializes from a JSON string (restore with
    /// [`restore`](Self::restore) afterwards).
    ///
    /// # Errors
    ///
    /// Returns the `serde_json` parse error.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdes_mapping::Strategy;
    use incdes_metrics::Weights;
    use incdes_model::prelude::*;

    fn arch2() -> Architecture {
        Architecture::builder()
            .pe("N1")
            .pe("N2")
            .bus(BusConfig::uniform_round(2, Time::new(10), 1).unwrap())
            .build()
            .unwrap()
    }

    fn sample_system() -> System {
        let mut sys = System::new(arch2());
        let mut g = ProcessGraph::new("g", Time::new(120), Time::new(120));
        let a = g.add_process(Process::new("a").wcet(PeId(0), Time::new(8)));
        let b = g.add_process(Process::new("b").wcet(PeId(1), Time::new(6)));
        g.add_message(a, b, Message::new("m", 4)).unwrap();
        sys.add_application(
            Application::new("v1", vec![g]),
            &FutureProfile::slide_example(),
            &Weights::default(),
            &Strategy::AdHoc,
        )
        .unwrap();
        sys
    }

    #[test]
    fn capture_restore_round_trip() {
        let sys = sample_system();
        let snap = SystemSnapshot::capture(&sys);
        let restored = snap.restore().unwrap();
        assert_eq!(restored.app_count(), 1);
        assert_eq!(restored.horizon(), sys.horizon());
        assert_eq!(restored.table(), sys.table());
    }

    #[test]
    fn json_round_trip() {
        let sys = sample_system();
        let json = SystemSnapshot::capture(&sys).to_json().unwrap();
        let restored = SystemSnapshot::from_json(&json).unwrap().restore().unwrap();
        assert_eq!(restored.table(), sys.table());
        // The restored session keeps working: commit another app.
        let mut restored = restored;
        let mut g = ProcessGraph::new("g2", Time::new(120), Time::new(120));
        g.add_process(Process::new("c").wcet(PeId(0), Time::new(5)));
        restored
            .add_application(
                Application::new("v2", vec![g]),
                &FutureProfile::slide_example(),
                &Weights::default(),
                &Strategy::AdHoc,
            )
            .unwrap();
        assert_eq!(restored.app_count(), 2);
    }

    #[test]
    fn corrupted_snapshot_rejected() {
        let sys = sample_system();
        let mut snap = SystemSnapshot::capture(&sys);
        // Tamper: move a job's mapping to a different PE in the stored
        // solution so the table no longer matches.
        let pr = incdes_model::ProcRef::new(0, incdes_graph::NodeId(0));
        snap.apps[0].solution.mapping.assign(pr, PeId(1));
        assert!(matches!(snap.restore(), Err(RestoreError::Corrupted(_))));
    }
}
