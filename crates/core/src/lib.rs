//! Incremental design sessions (Pop et al., DAC 2001).
//!
//! A [`System`] is the long-lived object of the incremental design
//! process: an architecture plus the applications committed so far, each
//! frozen in the system-wide static cyclic schedule. Adding the next
//! increment ([`System::add_application`]) runs a mapping strategy (AH,
//! MH or SA from `incdes-mapping`) against the frozen schedule and, on
//! success, commits the result — the new application in turn becomes
//! untouchable for later increments.
//!
//! [`System::probe_application`] answers the question behind the paper's
//! third experiment: *would this (future) application fit right now?* —
//! without committing anything.
//!
//! The optional [`ModificationPolicy`] implements the direction announced
//! in the paper's conclusions (the CODES 2001 follow-up): allowing a
//! *subset* of existing applications to be remapped, at a per-application
//! modification cost, when the current application cannot fit otherwise.
//!
//! # Example
//!
//! ```
//! use incdes_core::System;
//! use incdes_mapping::Strategy;
//! use incdes_metrics::Weights;
//! use incdes_model::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let arch = Architecture::builder()
//!     .pe("N1")
//!     .pe("N2")
//!     .bus(BusConfig::uniform_round(2, Time::new(10), 1)?)
//!     .build()?;
//! let mut system = System::new(arch);
//!
//! let mut g = ProcessGraph::new("g", Time::new(120), Time::new(120));
//! let a = g.add_process(Process::new("a").wcet(PeId(0), Time::new(8)));
//! let b = g.add_process(Process::new("b").wcet(PeId(1), Time::new(6)));
//! g.add_message(a, b, Message::new("m", 4))?;
//! let app = Application::new("v1", vec![g]);
//!
//! let report = system.add_application(
//!     app,
//!     &FutureProfile::slide_example(),
//!     &Weights::default(),
//!     &Strategy::mh(),
//! )?;
//! assert_eq!(report.app_id, AppId(0));
//! assert!(system.table().is_deadline_clean());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod modification;
pub mod persist;
pub mod system;

pub use modification::ModificationPolicy;
pub use persist::{RestoreError, SystemSnapshot};
pub use system::{CommitReport, CommittedApp, CoreError, ProbeReport, System};

/// Convenient glob import of the workspace's most used types.
pub mod prelude {
    pub use crate::{CommitReport, CoreError, ModificationPolicy, ProbeReport, System};
    pub use incdes_mapping::{MhConfig, SaConfig, Strategy};
    pub use incdes_metrics::{DesignCost, FitPolicy, Weights};
    pub use incdes_model::prelude::*;
    pub use incdes_sched::{ScheduleTable, SlackProfile};
}
