//! Modification-tolerant commits — the paper's announced follow-up.
//!
//! DAC 2001 forbids touching existing applications (requirement *a*). The
//! conclusions announce the CODES 2001 extension: when the current
//! application cannot fit, allow a subset of existing applications to be
//! re-mapped, choosing the subset so the *modification cost* (re-design
//! and re-testing effort) is minimized.
//!
//! [`ModificationPolicy`] implements a greedy version: existing
//! applications are considered for re-mapping in increasing
//! modification-cost order; the first subset that makes the current
//! application schedulable wins. Disabled scenarios (the DAC 2001
//! semantics) simply never call
//! [`ModificationPolicy::add_application_with_policy`].

use crate::system::{CommitReport, CommittedApp, CoreError, System};
use incdes_mapping::{run_strategy, MapError, MappingContext, Strategy};
use incdes_metrics::Weights;
use incdes_model::{validate, AppId, Application, FutureProfile};
use serde::{Deserialize, Serialize};

/// Policy for commits that may modify existing applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModificationPolicy {
    /// Largest number of existing applications that may be re-mapped for
    /// one commit.
    pub max_modified: usize,
}

impl Default for ModificationPolicy {
    fn default() -> Self {
        ModificationPolicy { max_modified: 1 }
    }
}

impl ModificationPolicy {
    /// Creates a policy allowing up to `max_modified` re-mapped
    /// applications per commit.
    pub fn new(max_modified: usize) -> Self {
        ModificationPolicy { max_modified }
    }

    /// Like [`System::add_application`], but when the plain commit is
    /// infeasible, tries re-mapping existing applications (cheapest
    /// modification cost first, up to [`max_modified`](Self::max_modified)
    /// of them) to make room.
    ///
    /// On success the report lists the re-mapped applications and the
    /// total modification cost incurred. On failure the system state is
    /// unchanged.
    ///
    /// # Errors
    ///
    /// As [`System::add_application`]; [`CoreError::Mapping`] with an
    /// infeasible inner error means even modifications could not help.
    pub fn add_application_with_policy(
        &self,
        system: &mut System,
        app: Application,
        future: &FutureProfile,
        weights: &Weights,
        strategy: &Strategy,
    ) -> Result<CommitReport, CoreError> {
        // Fast path: the DAC 2001 commit.
        let plain = system.add_application(app.clone(), future, weights, strategy);
        match plain {
            Ok(r) => return Ok(r),
            Err(CoreError::Mapping(MapError::Infeasible { .. })) => {}
            Err(e) => return Err(e),
        }

        validate::check_application(&app, system.arch())?;

        // Candidate existing applications, cheapest first.
        let mut order: Vec<(f64, AppId)> = system
            .active()
            .map(|c| (c.modification_cost, c.id))
            .collect();
        order.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

        let mut last_err = CoreError::Mapping(MapError::Infeasible {
            last: incdes_sched::SchedError::BadHorizon {
                horizon: system.horizon(),
            },
        });
        for k in 1..=self.max_modified.min(order.len()) {
            let evicted: Vec<AppId> = order.iter().take(k).map(|&(_, id)| id).collect();
            match self.try_with_evictions(system, &evicted, &app, future, weights, strategy) {
                Ok(report) => return Ok(report),
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }

    /// Attempts the commit with `evicted` applications unfrozen. Only
    /// mutates `system` on success.
    fn try_with_evictions(
        &self,
        system: &mut System,
        evicted: &[AppId],
        app: &Application,
        future: &FutureProfile,
        weights: &Weights,
        strategy: &Strategy,
    ) -> Result<CommitReport, CoreError> {
        let arch = system.arch().clone();
        let new_id = AppId(system.app_count() as u32);

        // Horizon covering everything (old horizon already covers evicted
        // apps' periods).
        let mut periods = vec![system.horizon()];
        periods.extend(app.graphs.iter().map(|g| g.period));
        let horizon = incdes_model::time::hyperperiod(periods)?;

        // Start from the table without the evicted apps and place the
        // *current* application first — it is the constrained one; the
        // evicted applications are then re-fitted around it.
        let table = system.table_without(evicted).replicate_to(&arch, horizon)?;
        let ctx = MappingContext::new(&arch, new_id, app, Some(&table), horizon, future, weights);
        let current_outcome = run_strategy(&ctx, strategy)?;
        let mut table = current_outcome.evaluation.table.clone();

        let mut solutions = Vec::new();
        for &id in evicted {
            let committed = &system.committed()[id.index()];
            let ctx = MappingContext::new(
                &arch,
                id,
                &committed.app,
                Some(&table),
                horizon,
                future,
                weights,
            );
            let outcome = run_strategy(&ctx, strategy)?;
            table = outcome.evaluation.table;
            solutions.push((id, outcome.solution));
        }
        let outcome = current_outcome;
        // The reported cost reflects the *final* state (current app plus
        // re-fitted evicted apps), not the intermediate table.
        let slack = incdes_sched::SlackProfile::from_table(&arch, &table);
        let final_cost = incdes_metrics::evaluate(&arch, &slack, future, weights);

        // Commit everything atomically.
        let modification_cost: f64 = evicted
            .iter()
            .map(|id| system.committed()[id.index()].modification_cost)
            .sum();
        for (id, sol) in solutions {
            system.committed_mut(id).solution = sol;
        }
        system.replace_state(table);
        system.push_committed(CommittedApp {
            id: new_id,
            app: app.clone(),
            solution: outcome.solution,
            modification_cost: 1.0,
            retired: false,
        });
        Ok(CommitReport {
            app_id: new_id,
            horizon,
            cost: final_cost,
            stats: outcome.stats,
            modified: evicted.to_vec(),
            modification_cost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdes_model::prelude::*;

    fn arch2() -> Architecture {
        Architecture::builder()
            .pe("N1")
            .pe("N2")
            .bus(BusConfig::uniform_round(2, Time::new(10), 1).unwrap())
            .build()
            .unwrap()
    }

    /// One process per PE-restricted app so placements are predictable.
    fn restricted_app(name: &str, pe: u32, wcet: u64) -> Application {
        let mut g = ProcessGraph::new(format!("{name}.g0"), Time::new(120), Time::new(120));
        g.add_process(Process::new(format!("{name}.p0")).wcet(PeId(pe), Time::new(wcet)));
        Application::new(name, vec![g])
    }

    /// A flexible app allowed on both PEs.
    fn flexible_app(name: &str, wcet: u64) -> Application {
        let mut g = ProcessGraph::new(format!("{name}.g0"), Time::new(120), Time::new(120));
        g.add_process(
            Process::new(format!("{name}.p0"))
                .wcet(PeId(0), Time::new(wcet))
                .wcet(PeId(1), Time::new(wcet)),
        );
        Application::new(name, vec![g])
    }

    #[test]
    fn falls_back_to_plain_commit_when_feasible() {
        let mut sys = System::new(arch2());
        let policy = ModificationPolicy::default();
        let r = policy
            .add_application_with_policy(
                &mut sys,
                flexible_app("v1", 10),
                &FutureProfile::slide_example(),
                &Weights::default(),
                &Strategy::AdHoc,
            )
            .unwrap();
        assert!(r.modified.is_empty());
        assert_eq!(r.modification_cost, 0.0);
    }

    #[test]
    fn eviction_makes_room() {
        let mut sys = System::new(arch2());
        let w = Weights::default();
        let f = FutureProfile::slide_example();
        // v1 is flexible (could run anywhere) but gets committed onto some
        // PE and fills 100/120 of it.
        sys.add_application(flexible_app("v1", 100), &f, &w, &Strategy::AdHoc)
            .unwrap();
        let v1_pe = sys.committed()[0].solution.mapping.iter().next().unwrap().1;
        // v2 needs 100 ticks *specifically* on the PE v1 occupies, plus v1
        // can move to the other PE.
        let v2 = restricted_app("v2", v1_pe.0, 100);
        // Plain commit fails...
        assert!(matches!(
            sys.clone()
                .add_application(v2.clone(), &f, &w, &Strategy::AdHoc),
            Err(CoreError::Mapping(MapError::Infeasible { .. }))
        ));
        // ...but the policy moves v1 out of the way.
        let policy = ModificationPolicy::new(1);
        let r = policy
            .add_application_with_policy(&mut sys, v2, &f, &w, &Strategy::AdHoc)
            .unwrap();
        assert_eq!(r.modified, vec![AppId(0)]);
        assert_eq!(r.modification_cost, 1.0);
        assert_eq!(sys.app_count(), 2);
        assert!(sys.table().is_deadline_clean());
        // v1 now lives on the other PE.
        let new_pe = sys.committed()[0].solution.mapping.iter().next().unwrap().1;
        assert_ne!(new_pe, v1_pe);
    }

    #[test]
    fn impossible_even_with_evictions() {
        let mut sys = System::new(arch2());
        let w = Weights::default();
        let f = FutureProfile::slide_example();
        sys.add_application(flexible_app("v1", 50), &f, &w, &Strategy::AdHoc)
            .unwrap();
        // 3 × 110 ticks in a 120 period on 2 PEs can never fit.
        let mut g = ProcessGraph::new("huge.g0", Time::new(120), Time::new(120));
        for i in 0..3 {
            g.add_process(
                Process::new(format!("huge.p{i}"))
                    .wcet(PeId(0), Time::new(110))
                    .wcet(PeId(1), Time::new(110)),
            );
        }
        let huge = Application::new("huge", vec![g]);
        let policy = ModificationPolicy::new(1);
        let before = sys.table().clone();
        let err = policy
            .add_application_with_policy(&mut sys, huge, &f, &w, &Strategy::AdHoc)
            .unwrap_err();
        assert!(matches!(
            err,
            CoreError::Mapping(MapError::Infeasible { .. })
        ));
        assert_eq!(sys.app_count(), 1);
        assert_eq!(sys.table(), &before);
    }

    #[test]
    fn cheapest_application_evicted_first() {
        let mut sys = System::new(arch2());
        let w = Weights::default();
        let f = FutureProfile::slide_example();
        sys.add_application(restricted_app("v1", 0, 100), &f, &w, &Strategy::AdHoc)
            .unwrap();
        sys.add_application(restricted_app("v2", 1, 100), &f, &w, &Strategy::AdHoc)
            .unwrap();
        sys.set_modification_cost(AppId(0), 10.0);
        sys.set_modification_cost(AppId(1), 2.0);
        // Neither PE has 50 free... v3 needs 50 on either PE; each has 20
        // free. Evicting v2 (cheaper) can't help (it can only live on PE1).
        // Evicting it still gets tried first; the commit of v2 back onto
        // PE1 leaves the same 20 free, so k=1 with v2 fails and the policy
        // gives up (max_modified = 1).
        let v3 = flexible_app("v3", 50);
        let policy = ModificationPolicy::new(1);
        let err = policy
            .add_application_with_policy(&mut sys, v3, &f, &w, &Strategy::AdHoc)
            .unwrap_err();
        assert!(matches!(
            err,
            CoreError::Mapping(MapError::Infeasible { .. })
        ));
    }
}
