//! The incremental design session.

use incdes_mapping::{
    run_strategy, MapError, MappingContext, RunStats, SearchParallelism, Solution, Strategy,
};
use incdes_metrics::{DesignCost, Weights};
use incdes_model::time::{hyperperiod, HyperperiodError};
use incdes_model::{validate, AppId, Application, Architecture, FutureProfile, ModelError, Time};
use incdes_sched::engine::FrozenBase;
use incdes_sched::{ScheduleTable, SlackProfile, TableError};
use std::cell::{Cell, RefCell};
use std::fmt;
use std::sync::Arc;

/// An application that has been committed to the system and is now frozen.
#[derive(Debug, Clone)]
pub struct CommittedApp {
    /// The id its jobs carry in the schedule table.
    pub id: AppId,
    /// The application.
    pub app: Application,
    /// The design alternative it was committed with.
    pub solution: Solution,
    /// Cost of modifying (re-mapping) this application later, used by
    /// [`crate::ModificationPolicy`]. Defaults to 1.0.
    pub modification_cost: f64,
    /// True once the application has been decommissioned: its jobs are
    /// gone from the schedule but its record (and [`AppId`]) remain so
    /// later ids stay stable.
    pub retired: bool,
}

/// Error from a session operation.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The application is structurally invalid for this architecture.
    Validation(ModelError),
    /// The mapping strategy failed (including "does not fit").
    Mapping(MapError),
    /// The hyperperiod could not be computed (zero period or overflow).
    Horizon(HyperperiodError),
    /// Internal replication failure (should not happen on valid systems).
    Table(TableError),
    /// The referenced application does not exist or is already retired.
    UnknownApp(AppId),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Validation(e) => write!(f, "invalid application: {e}"),
            CoreError::Mapping(e) => write!(f, "mapping failed: {e}"),
            CoreError::Horizon(e) => write!(f, "hyperperiod error: {e}"),
            CoreError::Table(e) => write!(f, "schedule table error: {e}"),
            CoreError::UnknownApp(id) => write!(f, "no active application {id}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<ModelError> for CoreError {
    fn from(e: ModelError) -> Self {
        CoreError::Validation(e)
    }
}
impl From<MapError> for CoreError {
    fn from(e: MapError) -> Self {
        CoreError::Mapping(e)
    }
}
impl From<HyperperiodError> for CoreError {
    fn from(e: HyperperiodError) -> Self {
        CoreError::Horizon(e)
    }
}
impl From<TableError> for CoreError {
    fn from(e: TableError) -> Self {
        CoreError::Table(e)
    }
}

/// Result of committing an application.
#[derive(Debug, Clone)]
pub struct CommitReport {
    /// Id assigned to the new application.
    pub app_id: AppId,
    /// The system hyperperiod after the commit.
    pub horizon: Time,
    /// Objective value of the committed design alternative.
    pub cost: DesignCost,
    /// Strategy run statistics.
    pub stats: RunStats,
    /// Existing applications that were re-mapped to make room (empty
    /// unless a [`crate::ModificationPolicy`] was used).
    pub modified: Vec<AppId>,
    /// Total modification cost incurred.
    pub modification_cost: f64,
}

/// Result of probing an application without committing it.
#[derive(Debug, Clone)]
pub struct ProbeReport {
    /// Whether a valid mapping + schedule was found.
    pub feasible: bool,
    /// The objective value of the found alternative (if feasible).
    pub cost: Option<DesignCost>,
    /// Strategy run statistics.
    pub stats: Option<RunStats>,
}

/// The incremental design session: architecture + frozen applications +
/// the system-wide schedule table.
#[derive(Debug, Clone)]
pub struct System {
    arch: Architecture,
    committed: Vec<CommittedApp>,
    table: ScheduleTable,
    /// One baked [`FrozenBase`] per `(table state, horizon)`, shared by
    /// every [`MappingContext`] this system hands out until the table
    /// mutates — so a campaign script's probe streak (and the probe
    /// preceding a matching commit) replays the frozen schedule once,
    /// not once per step. Keyed by horizon only: the cache is cleared
    /// on every table mutation, so entries always describe the current
    /// table.
    ///
    /// Clearing this cache is also what fences the scheduler's record
    /// cache across commits: every rebake mints a fresh base
    /// generation id, and the engine refuses to splice any run record
    /// — live or cached — made against a different generation. A
    /// context (or a clone of this system sharing the old `Arc`)
    /// holding pre-commit records therefore degrades to the full path
    /// instead of splicing placements from a schedule that no longer
    /// exists. See `commit_rebakes_base_with_fresh_generation`.
    base_cache: RefCell<Option<(Time, Arc<FrozenBase>)>>,
    base_reuse: Cell<usize>,
    /// How search strategies parallelize inside a scenario; handed to
    /// every [`MappingContext`] this system creates. Defaults to the
    /// context's environment-derived setting (`INCDES_SEARCH_THREADS`),
    /// overridden per-system via [`System::set_parallelism`].
    parallelism: Option<SearchParallelism>,
}

impl System {
    /// A fresh system with no applications. The initial schedule horizon
    /// is one bus cycle (it grows to the hyperperiod as applications are
    /// committed).
    pub fn new(arch: Architecture) -> Self {
        let table = ScheduleTable::empty(arch.bus().cycle_length());
        System {
            arch,
            committed: Vec::new(),
            table,
            base_cache: RefCell::new(None),
            base_reuse: Cell::new(0),
            parallelism: None,
        }
    }

    /// Sets how MH/SA parallelize candidate evaluation inside every
    /// mapping context this system hands out (see
    /// [`SearchParallelism`]). The default keeps each context's
    /// environment-derived setting.
    pub fn set_parallelism(&mut self, parallelism: SearchParallelism) {
        self.parallelism = Some(parallelism);
    }

    /// The search parallelism override, if one was set.
    pub fn parallelism(&self) -> Option<SearchParallelism> {
        self.parallelism
    }

    /// The shared frozen base for the current table replicated to
    /// `horizon`, baking it on first use. `None` when baking fails —
    /// the mapping context then reports the error through its ordinary
    /// lazy path, keeping error precedence identical.
    fn shared_base(&self, frozen: &ScheduleTable, horizon: Time) -> Option<Arc<FrozenBase>> {
        let mut cache = self.base_cache.borrow_mut();
        if let Some((cached_horizon, base)) = cache.as_ref() {
            if *cached_horizon == horizon {
                self.base_reuse.set(self.base_reuse.get() + 1);
                return Some(Arc::clone(base));
            }
        }
        match FrozenBase::new(&self.arch, Some(frozen), horizon) {
            Ok(base) => {
                let base = Arc::new(base);
                *cache = Some((horizon, Arc::clone(&base)));
                Some(base)
            }
            Err(_) => None,
        }
    }

    /// How many mapping contexts were served a cached frozen base
    /// instead of re-baking the frozen schedule (diagnostics; see
    /// [`System::shared_base`]).
    pub fn frozen_base_reuse_count(&self) -> usize {
        self.base_reuse.get()
    }

    /// The architecture.
    pub fn arch(&self) -> &Architecture {
        &self.arch
    }

    /// The committed applications, in commit order (including retired
    /// ones; see [`CommittedApp::retired`]).
    pub fn committed(&self) -> &[CommittedApp] {
        &self.committed
    }

    /// The applications still running on the system.
    pub fn active(&self) -> impl Iterator<Item = &CommittedApp> {
        self.committed.iter().filter(|c| !c.retired)
    }

    /// Decommissions an application: its jobs and messages disappear from
    /// the schedule, freeing slack for later increments. Other
    /// applications keep their exact job start times; their messages stay
    /// in the same bus slot occurrence but compact to the front of the
    /// frame (TTP frames are reassembled every cycle, so removal can only
    /// move a message *earlier* — see
    /// [`incdes_sched::ScheduleTable::without_apps`]). The [`AppId`] is
    /// not reused.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownApp`] if `id` is out of range or already
    /// retired.
    pub fn decommission(&mut self, id: AppId) -> Result<(), CoreError> {
        match self.committed.get_mut(id.index()) {
            Some(c) if !c.retired => c.retired = true,
            _ => return Err(CoreError::UnknownApp(id)),
        }
        self.table = self.table_without(&[id]);
        *self.base_cache.borrow_mut() = None;
        Ok(())
    }

    /// Number of committed applications.
    pub fn app_count(&self) -> usize {
        self.committed.len()
    }

    /// The current system-wide schedule table.
    pub fn table(&self) -> &ScheduleTable {
        &self.table
    }

    /// The current hyperperiod.
    pub fn horizon(&self) -> Time {
        self.table.horizon()
    }

    /// The current slack profile.
    pub fn slack(&self) -> SlackProfile {
        SlackProfile::from_table(&self.arch, &self.table)
    }

    /// Sets the modification cost of a committed application.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a committed application.
    pub fn set_modification_cost(&mut self, id: AppId, cost: f64) {
        self.committed[id.index()].modification_cost = cost;
    }

    /// The hyperperiod after adding `app`: LCM of the current horizon and
    /// the new periods (always a multiple of the bus cycle).
    fn horizon_with(&self, app: &Application) -> Result<Time, CoreError> {
        let mut periods: Vec<Time> = vec![self.table.horizon()];
        periods.extend(app.graphs.iter().map(|g| g.period));
        Ok(hyperperiod(periods)?)
    }

    /// Maps, schedules and commits `app` with the given strategy.
    ///
    /// On success the application becomes part of the frozen system state;
    /// requirement (a) guarantees no earlier application moved.
    ///
    /// # Errors
    ///
    /// [`CoreError::Validation`] for structurally invalid applications,
    /// [`CoreError::Mapping`] when no feasible design alternative exists
    /// (the system state is unchanged in every error case).
    pub fn add_application(
        &mut self,
        app: Application,
        future: &FutureProfile,
        weights: &Weights,
        strategy: &Strategy,
    ) -> Result<CommitReport, CoreError> {
        validate::check_application(&app, &self.arch)?;
        let new_horizon = self.horizon_with(&app)?;
        let frozen = self.table.replicate_to(&self.arch, new_horizon)?;
        let id = AppId(self.committed.len() as u32);
        let mut ctx = MappingContext::new(
            &self.arch,
            id,
            &app,
            Some(&frozen),
            new_horizon,
            future,
            weights,
        );
        if let Some(base) = self.shared_base(&frozen, new_horizon) {
            ctx = ctx.with_frozen_base(base);
        }
        if let Some(par) = self.parallelism {
            ctx = ctx.with_parallelism(par);
        }
        let outcome = run_strategy(&ctx, strategy)?;
        self.table = outcome.evaluation.table;
        *self.base_cache.borrow_mut() = None;
        self.committed.push(CommittedApp {
            id,
            app,
            solution: outcome.solution,
            modification_cost: 1.0,
            retired: false,
        });
        Ok(CommitReport {
            app_id: id,
            horizon: new_horizon,
            cost: outcome.evaluation.cost,
            stats: outcome.stats,
            modified: Vec::new(),
            modification_cost: 0.0,
        })
    }

    /// Checks whether `app` could be mapped on the current system state,
    /// without committing anything — the mappability probe of the paper's
    /// third experiment.
    ///
    /// # Errors
    ///
    /// [`CoreError::Validation`] for structurally invalid applications;
    /// infeasibility is *not* an error (it yields
    /// `ProbeReport { feasible: false, .. }`).
    pub fn probe_application(
        &self,
        app: &Application,
        future: &FutureProfile,
        weights: &Weights,
        strategy: &Strategy,
    ) -> Result<ProbeReport, CoreError> {
        validate::check_application(app, &self.arch)?;
        let new_horizon = self.horizon_with(app)?;
        let frozen = self.table.replicate_to(&self.arch, new_horizon)?;
        let id = AppId(self.committed.len() as u32);
        let mut ctx = MappingContext::new(
            &self.arch,
            id,
            app,
            Some(&frozen),
            new_horizon,
            future,
            weights,
        );
        if let Some(base) = self.shared_base(&frozen, new_horizon) {
            ctx = ctx.with_frozen_base(base);
        }
        if let Some(par) = self.parallelism {
            ctx = ctx.with_parallelism(par);
        }
        match run_strategy(&ctx, strategy) {
            Ok(outcome) => Ok(ProbeReport {
                feasible: true,
                cost: Some(outcome.evaluation.cost),
                stats: Some(outcome.stats),
            }),
            Err(MapError::Infeasible { .. }) => Ok(ProbeReport {
                feasible: false,
                cost: None,
                stats: None,
            }),
            Err(e) => Err(CoreError::Mapping(e)),
        }
    }

    /// Rebuilds the schedule table with the given applications' jobs and
    /// messages removed (used by decommission and the modification
    /// policy). Remaining bus frames compact to the front of their slot.
    pub(crate) fn table_without(&self, exclude: &[AppId]) -> ScheduleTable {
        self.table.without_apps(&self.arch, exclude)
    }

    /// Replaces the stored table (modification policy internals).
    pub(crate) fn replace_state(&mut self, table: ScheduleTable) {
        self.table = table;
        *self.base_cache.borrow_mut() = None;
    }

    /// Reassembles a session from its parts (snapshot restore internals;
    /// the caller has already validated the table).
    pub(crate) fn from_parts(
        arch: Architecture,
        committed: Vec<CommittedApp>,
        table: ScheduleTable,
    ) -> Self {
        System {
            arch,
            committed,
            table,
            base_cache: RefCell::new(None),
            base_reuse: Cell::new(0),
            parallelism: None,
        }
    }

    /// Mutable access to a committed application's record (modification
    /// policy internals).
    pub(crate) fn committed_mut(&mut self, id: AppId) -> &mut CommittedApp {
        &mut self.committed[id.index()]
    }

    /// Appends a committed application record (modification policy
    /// internals).
    pub(crate) fn push_committed(&mut self, rec: CommittedApp) {
        self.committed.push(rec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdes_mapping::Strategy;
    use incdes_model::prelude::*;
    use incdes_sched::Mapping;

    fn arch2() -> Architecture {
        Architecture::builder()
            .pe("N1")
            .pe("N2")
            .bus(BusConfig::uniform_round(2, Time::new(10), 1).unwrap())
            .build()
            .unwrap()
    }

    fn app(name: &str, period: u64, wcets: &[u64]) -> Application {
        let mut g = ProcessGraph::new(format!("{name}.g0"), Time::new(period), Time::new(period));
        for (i, &w) in wcets.iter().enumerate() {
            g.add_process(
                Process::new(format!("{name}.p{i}"))
                    .wcet(PeId(0), Time::new(w))
                    .wcet(PeId(1), Time::new(w)),
            );
        }
        Application::new(name, vec![g])
    }

    fn future() -> FutureProfile {
        FutureProfile::slide_example()
    }

    #[test]
    fn commit_sequence_grows_horizon() {
        let mut sys = System::new(arch2());
        assert_eq!(sys.horizon(), Time::new(20)); // bus cycle
        let w = Weights::default();
        let r1 = sys
            .add_application(app("v1", 120, &[10, 10]), &future(), &w, &Strategy::AdHoc)
            .unwrap();
        assert_eq!(r1.app_id, AppId(0));
        assert_eq!(sys.horizon(), Time::new(120));
        let r2 = sys
            .add_application(app("v2", 240, &[8]), &future(), &w, &Strategy::AdHoc)
            .unwrap();
        assert_eq!(r2.app_id, AppId(1));
        assert_eq!(sys.horizon(), Time::new(240));
        assert_eq!(sys.app_count(), 2);
        assert!(sys.table().is_deadline_clean());
    }

    #[test]
    fn committed_apps_never_move() {
        let mut sys = System::new(arch2());
        let w = Weights::default();
        sys.add_application(app("v1", 120, &[10, 10]), &future(), &w, &Strategy::AdHoc)
            .unwrap();
        // Snapshot of v1's jobs within its own 120-tick period.
        let before: Vec<_> = sys
            .table()
            .jobs()
            .iter()
            .filter(|j| j.job.app == AppId(0) && j.release < Time::new(120))
            .map(|j| (j.job, j.pe, j.start))
            .collect();
        sys.add_application(app("v2", 240, &[8, 8, 8]), &future(), &w, &Strategy::mh())
            .unwrap();
        for (job, pe, start) in before {
            let now = sys.table().job(job).expect("job still present");
            assert_eq!(now.pe, pe);
            assert_eq!(now.start, start);
        }
    }

    #[test]
    fn full_table_validates_after_commits() {
        let mut sys = System::new(arch2());
        let w = Weights::default();
        sys.add_application(app("v1", 120, &[10, 10]), &future(), &w, &Strategy::AdHoc)
            .unwrap();
        sys.add_application(app("v2", 240, &[8, 8]), &future(), &w, &Strategy::mh())
            .unwrap();
        let pairs: Vec<(AppId, &Application, &Mapping)> = sys
            .committed()
            .iter()
            .map(|c| (c.id, &c.app, &c.solution.mapping))
            .collect();
        sys.table().validate(sys.arch(), &pairs).unwrap();
    }

    #[test]
    fn failed_commit_leaves_state_unchanged() {
        let mut sys = System::new(arch2());
        let w = Weights::default();
        sys.add_application(app("v1", 120, &[10]), &future(), &w, &Strategy::AdHoc)
            .unwrap();
        let table_before = sys.table().clone();
        // 300 ticks of work in a 120 period on 2 PEs: infeasible.
        let err = sys
            .add_application(
                app("big", 120, &[100, 100, 100]),
                &future(),
                &w,
                &Strategy::AdHoc,
            )
            .unwrap_err();
        assert!(matches!(
            err,
            CoreError::Mapping(MapError::Infeasible { .. })
        ));
        assert_eq!(sys.app_count(), 1);
        assert_eq!(sys.table(), &table_before);
    }

    #[test]
    fn invalid_app_rejected_before_mapping() {
        let mut sys = System::new(arch2());
        let w = Weights::default();
        let err = sys
            .add_application(
                Application::new("empty", vec![]),
                &future(),
                &w,
                &Strategy::AdHoc,
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::Validation(_)));
    }

    /// The frozen base is baked once per system state: a probe streak
    /// (and the commit that follows at the same hyperperiod) shares one
    /// bake, and any table mutation invalidates it.
    #[test]
    fn probe_streak_shares_one_frozen_base() {
        let mut sys = System::new(arch2());
        let w = Weights::default();
        sys.add_application(app("v1", 120, &[10, 10]), &future(), &w, &Strategy::AdHoc)
            .unwrap();
        assert_eq!(sys.frozen_base_reuse_count(), 0);
        for _ in 0..3 {
            sys.probe_application(&app("p", 120, &[5]), &future(), &w, &Strategy::AdHoc)
                .unwrap();
        }
        // First probe bakes, the next two reuse.
        assert_eq!(sys.frozen_base_reuse_count(), 2);
        // A commit at the same horizon reuses the probe's bake...
        sys.add_application(app("v2", 120, &[5]), &future(), &w, &Strategy::AdHoc)
            .unwrap();
        assert_eq!(sys.frozen_base_reuse_count(), 3);
        // ...and invalidates the cache: the next probe re-bakes.
        sys.probe_application(&app("p2", 120, &[5]), &future(), &w, &Strategy::AdHoc)
            .unwrap();
        assert_eq!(sys.frozen_base_reuse_count(), 3);
        sys.probe_application(&app("p3", 120, &[5]), &future(), &w, &Strategy::AdHoc)
            .unwrap();
        assert_eq!(sys.frozen_base_reuse_count(), 4);
        // A horizon-growing probe does not reuse the 120-tick bake.
        sys.probe_application(&app("p4", 240, &[5]), &future(), &w, &Strategy::AdHoc)
            .unwrap();
        assert_eq!(sys.frozen_base_reuse_count(), 4);
    }

    /// Every rebake after a table mutation carries a fresh generation
    /// id — the fence that keeps a scheduler's record cache from
    /// splicing placements recorded against a stale frozen schedule.
    /// A pre-mutation `Arc` to the old bake stays valid (clones keep
    /// their originator's id, content being identical), but no new
    /// bake ever reuses a retired id.
    #[test]
    fn commit_rebakes_base_with_fresh_generation() {
        let mut sys = System::new(arch2());
        let w = Weights::default();
        sys.add_application(app("v1", 120, &[10, 10]), &future(), &w, &Strategy::AdHoc)
            .unwrap();
        let horizon = sys.horizon();
        let frozen = sys.table().replicate_to(sys.arch(), horizon).unwrap();
        let before = sys.shared_base(&frozen, horizon).unwrap();
        assert_eq!(before.generation(), Arc::clone(&before).generation());

        sys.add_application(app("v2", 120, &[5]), &future(), &w, &Strategy::AdHoc)
            .unwrap();
        let frozen2 = sys.table().replicate_to(sys.arch(), sys.horizon()).unwrap();
        let after = sys.shared_base(&frozen2, sys.horizon()).unwrap();
        assert_ne!(
            before.generation(),
            after.generation(),
            "a rebake after a commit must mint a fresh generation"
        );
        // The old Arc still answers for contexts created pre-commit;
        // only its generation id keeps their records from splicing
        // into post-commit evaluations.
        assert_eq!(before.horizon(), horizon);
    }

    #[test]
    fn probe_does_not_commit() {
        let mut sys = System::new(arch2());
        let w = Weights::default();
        sys.add_application(app("v1", 120, &[10]), &future(), &w, &Strategy::AdHoc)
            .unwrap();
        let probe = sys
            .probe_application(
                &app("future", 120, &[5, 5]),
                &future(),
                &w,
                &Strategy::AdHoc,
            )
            .unwrap();
        assert!(probe.feasible);
        assert!(probe.cost.is_some());
        assert_eq!(sys.app_count(), 1);

        let too_big = app("huge", 120, &[100, 100, 100]);
        let probe2 = sys
            .probe_application(&too_big, &future(), &w, &Strategy::AdHoc)
            .unwrap();
        assert!(!probe2.feasible);
        assert!(probe2.cost.is_none());
    }

    #[test]
    fn table_without_filters_app() {
        let mut sys = System::new(arch2());
        let w = Weights::default();
        sys.add_application(app("v1", 120, &[10]), &future(), &w, &Strategy::AdHoc)
            .unwrap();
        sys.add_application(app("v2", 120, &[10]), &future(), &w, &Strategy::AdHoc)
            .unwrap();
        let without = sys.table_without(&[AppId(0)]);
        assert!(without.jobs().iter().all(|j| j.job.app != AppId(0)));
        assert!(without.jobs().iter().any(|j| j.job.app == AppId(1)));
    }
}

#[cfg(test)]
mod decommission_tests {
    use super::*;
    use incdes_mapping::Strategy;
    use incdes_model::prelude::*;

    fn arch2() -> Architecture {
        Architecture::builder()
            .pe("N1")
            .pe("N2")
            .bus(BusConfig::uniform_round(2, Time::new(10), 1).unwrap())
            .build()
            .unwrap()
    }

    fn one_proc(name: &str, wcet: u64) -> Application {
        let mut g = ProcessGraph::new(format!("{name}.g"), Time::new(120), Time::new(120));
        g.add_process(
            Process::new(format!("{name}.p"))
                .wcet(PeId(0), Time::new(wcet))
                .wcet(PeId(1), Time::new(wcet)),
        );
        Application::new(name, vec![g])
    }

    #[test]
    fn decommission_frees_slack_without_moving_others() {
        let mut sys = System::new(arch2());
        let f = FutureProfile::slide_example();
        let w = Weights::default();
        sys.add_application(one_proc("v1", 40), &f, &w, &Strategy::AdHoc)
            .unwrap();
        sys.add_application(one_proc("v2", 40), &f, &w, &Strategy::AdHoc)
            .unwrap();
        let v2_before: Vec<_> = sys
            .table()
            .jobs()
            .iter()
            .filter(|j| j.job.app == AppId(1))
            .map(|j| (j.job, j.start))
            .collect();
        let slack_before = sys.slack().total_pe_slack();

        sys.decommission(AppId(0)).unwrap();
        assert!(sys.committed()[0].retired);
        assert_eq!(sys.active().count(), 1);
        assert!(sys.table().jobs().iter().all(|j| j.job.app != AppId(0)));
        // v2 kept its exact slots.
        for (job, start) in v2_before {
            assert_eq!(sys.table().job(job).unwrap().start, start);
        }
        assert!(sys.slack().total_pe_slack() > slack_before);
    }

    #[test]
    fn decommission_twice_is_an_error() {
        let mut sys = System::new(arch2());
        let f = FutureProfile::slide_example();
        let w = Weights::default();
        sys.add_application(one_proc("v1", 10), &f, &w, &Strategy::AdHoc)
            .unwrap();
        sys.decommission(AppId(0)).unwrap();
        assert_eq!(
            sys.decommission(AppId(0)),
            Err(CoreError::UnknownApp(AppId(0)))
        );
        assert_eq!(
            sys.decommission(AppId(7)),
            Err(CoreError::UnknownApp(AppId(7)))
        );
    }

    /// Two-process application with a forced cross-PE message (each
    /// process is only allowed on one PE).
    fn two_proc_msg(name: &str, wcet: u64) -> Application {
        let mut g = ProcessGraph::new(format!("{name}.g"), Time::new(120), Time::new(120));
        let a = g.add_process(Process::new(format!("{name}.a")).wcet(PeId(0), Time::new(wcet)));
        let b = g.add_process(Process::new(format!("{name}.b")).wcet(PeId(1), Time::new(wcet)));
        g.add_message(a, b, Message::new(format!("{name}.m"), 4))
            .unwrap();
        Application::new(name, vec![g])
    }

    /// Regression: committing after a decommission used to break on bus
    /// frames with holes (the removed app's messages left gaps that the
    /// contiguous frame replay could not represent). Frames now compact
    /// on removal, so the freed bus time is reusable.
    #[test]
    fn add_after_decommission_with_messages() {
        let mut sys = System::new(arch2());
        let f = FutureProfile::slide_example();
        let w = Weights::default();
        for i in 0..3 {
            sys.add_application(two_proc_msg(&format!("v{i}"), 10), &f, &w, &Strategy::AdHoc)
                .unwrap();
        }
        sys.decommission(AppId(1)).unwrap();
        // The next commit maps and schedules over the compacted table.
        sys.add_application(two_proc_msg("v3", 10), &f, &w, &Strategy::mh())
            .unwrap();
        let pairs: Vec<_> = sys
            .active()
            .map(|c| (c.id, &c.app, &c.solution.mapping))
            .collect();
        sys.table().validate(sys.arch(), &pairs).unwrap();
    }

    #[test]
    fn freed_capacity_is_reusable_and_ids_stay_stable() {
        let mut sys = System::new(arch2());
        let f = FutureProfile::slide_example();
        let w = Weights::default();
        // Two big apps saturate both PEs.
        sys.add_application(one_proc("v1", 100), &f, &w, &Strategy::AdHoc)
            .unwrap();
        sys.add_application(one_proc("v2", 100), &f, &w, &Strategy::AdHoc)
            .unwrap();
        // A third big one cannot fit...
        assert!(sys
            .clone()
            .add_application(one_proc("v3", 100), &f, &w, &Strategy::AdHoc)
            .is_err());
        // ...until v1 is decommissioned.
        sys.decommission(AppId(0)).unwrap();
        let r = sys
            .add_application(one_proc("v3", 100), &f, &w, &Strategy::AdHoc)
            .unwrap();
        assert_eq!(r.app_id, AppId(2), "retired ids are never reused");
        assert_eq!(sys.active().count(), 2);
    }
}
