//! The wall-clock phase plane.
//!
//! A [`scope`] is an RAII timer: construction stamps `Instant::now()`,
//! drop records the elapsed nanoseconds into the calling thread's
//! per-phase aggregate (count / total / min / max / log₂-ns histogram)
//! and, when a [`crate::trace`] capture is live, appends a trace event.
//!
//! The timers only exist under the `obs-wallclock` cargo feature; a
//! default build compiles [`PhaseScope`] to a zero-sized no-op. Even
//! with the feature on, scopes are disarmed until
//! [`set_enabled`]`(true)` — one relaxed atomic load decides — so
//! instrumented hot paths cost nothing measurable in ordinary runs.
//!
//! The aggregate/snapshot types are compiled unconditionally so callers
//! (bench tables, campaign profiles) have one API regardless of the
//! feature: without it every snapshot is simply all-zero.

use std::cell::RefCell;
#[cfg(feature = "obs-wallclock")]
use std::sync::atomic::{AtomicBool, Ordering};
#[cfg(feature = "obs-wallclock")]
use std::time::Instant;

macro_rules! phases {
    ($($(#[$doc:meta])* $variant:ident => $name:literal,)+) => {
        /// One timed engine phase.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        #[repr(usize)]
        pub enum Phase {
            $($(#[$doc])* $variant,)+
        }

        /// Number of registered phases.
        pub const PHASE_COUNT: usize = Phase::ALL.len();

        impl Phase {
            /// Every phase, in declaration (= snapshot) order.
            pub const ALL: &'static [Phase] = &[$(Phase::$variant),+];

            /// The stable name used in JSON output.
            pub const fn name(self) -> &'static str {
                match self {
                    $(Phase::$variant => $name,)+
                }
            }
        }
    };
}

phases! {
    /// Unwinding the live record's suffix (or the bulk rebase reset).
    Undo => "undo",
    /// Divergence analysis, source-prefix replay and prefix splicing.
    Splice => "splice",
    /// List-scheduling the suffix and assembling the output table.
    RePlace => "replace",
    /// Deriving the incremental `SlackProfile`.
    Slack => "slack",
    /// Scoring a slack profile with the C1/C2 objective.
    Objective => "objective",
    /// Baking a `FrozenBase` (frozen schedule replay + validation).
    Bake => "bake",
    /// Recomputing a graph's priorities after a cost change (nested
    /// inside `Splice`; not one of the five summed phases).
    PriorityRefresh => "priority_refresh",
    /// Solution-memo lookup and insert bookkeeping.
    Memo => "memo",
}

/// Histogram buckets: bucket `b` holds durations with
/// `floor(log2(ns)) + 1 == b` (bucket 0 is exactly 0 ns), saturating at
/// the last bucket (≈ 9 minutes and beyond).
pub const HIST_BUCKETS: usize = 40;

#[cfg_attr(not(any(feature = "obs-wallclock", test)), allow(dead_code))]
fn bucket(ns: u64) -> usize {
    ((64 - ns.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

/// Per-phase aggregate of recorded scope durations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseAgg {
    /// Scopes recorded.
    pub count: u64,
    /// Sum of recorded nanoseconds (wrapping).
    pub total_ns: u64,
    /// Shortest recorded scope (0 when `count == 0`).
    pub min_ns: u64,
    /// Longest recorded scope.
    pub max_ns: u64,
    /// Log₂-nanosecond histogram (see [`HIST_BUCKETS`]).
    pub hist: [u64; HIST_BUCKETS],
}

impl Default for PhaseAgg {
    fn default() -> Self {
        PhaseAgg {
            count: 0,
            total_ns: 0,
            min_ns: 0,
            max_ns: 0,
            hist: [0; HIST_BUCKETS],
        }
    }
}

impl PhaseAgg {
    #[cfg_attr(not(any(feature = "obs-wallclock", test)), allow(dead_code))]
    fn record(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns = self.total_ns.wrapping_add(ns);
        self.min_ns = if self.count == 1 {
            ns
        } else {
            self.min_ns.min(ns)
        };
        self.max_ns = self.max_ns.max(ns);
        self.hist[bucket(ns)] += 1;
    }
}

thread_local! {
    static AGGS: RefCell<[PhaseAgg; PHASE_COUNT]> =
        RefCell::new([PhaseAgg::default(); PHASE_COUNT]);
}

#[cfg(feature = "obs-wallclock")]
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Arms (or disarms) the timer plane process-wide. A no-op without the
/// `obs-wallclock` feature.
#[cfg(feature = "obs-wallclock")]
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Arms (or disarms) the timer plane process-wide. A no-op without the
/// `obs-wallclock` feature.
#[cfg(not(feature = "obs-wallclock"))]
pub fn set_enabled(_on: bool) {}

/// Whether the timer plane is armed. Always `false` without the
/// `obs-wallclock` feature.
#[cfg(feature = "obs-wallclock")]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Whether the timer plane is armed. Always `false` without the
/// `obs-wallclock` feature.
#[cfg(not(feature = "obs-wallclock"))]
pub fn enabled() -> bool {
    false
}

/// An RAII phase timer: records on drop when armed, otherwise inert.
/// Zero-sized without the `obs-wallclock` feature.
#[must_use = "a phase scope times until it is dropped"]
pub struct PhaseScope {
    #[cfg(feature = "obs-wallclock")]
    armed: Option<(Phase, Instant)>,
}

/// Opens a timer scope for `phase`.
#[inline]
pub fn scope(phase: Phase) -> PhaseScope {
    #[cfg(feature = "obs-wallclock")]
    {
        PhaseScope {
            armed: enabled().then(|| (phase, Instant::now())),
        }
    }
    #[cfg(not(feature = "obs-wallclock"))]
    {
        let _ = phase;
        PhaseScope {}
    }
}

impl Drop for PhaseScope {
    fn drop(&mut self) {
        #[cfg(feature = "obs-wallclock")]
        if let Some((phase, start)) = self.armed.take() {
            record(phase, start);
        }
    }
}

#[cfg(feature = "obs-wallclock")]
fn record(phase: Phase, start: Instant) {
    let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    let _ = AGGS.try_with(|aggs| aggs.borrow_mut()[phase as usize].record(ns));
    crate::trace::note(phase, start, ns);
}

/// Copies the calling thread's phase aggregates.
pub fn snapshot() -> PhaseSnapshot {
    AGGS.try_with(|aggs| PhaseSnapshot {
        aggs: *aggs.borrow(),
    })
    .unwrap_or_default()
}

/// Folds a harvested worker tally onto the calling thread's aggregates
/// (associative, like the counter merge).
pub fn merge_into_current(snap: &PhaseSnapshot) {
    let _ = AGGS.try_with(|aggs| {
        let mut aggs = aggs.borrow_mut();
        for (agg, other) in aggs.iter_mut().zip(snap.aggs.iter()) {
            *agg = merge_agg(agg, other);
        }
    });
}

fn merge_agg(a: &PhaseAgg, b: &PhaseAgg) -> PhaseAgg {
    let min_ns = match (a.count, b.count) {
        (0, _) => b.min_ns,
        (_, 0) => a.min_ns,
        _ => a.min_ns.min(b.min_ns),
    };
    let mut hist = [0u64; HIST_BUCKETS];
    for (h, (&x, &y)) in hist.iter_mut().zip(a.hist.iter().zip(b.hist.iter())) {
        *h = x.wrapping_add(y);
    }
    PhaseAgg {
        count: a.count.wrapping_add(b.count),
        total_ns: a.total_ns.wrapping_add(b.total_ns),
        min_ns,
        max_ns: a.max_ns.max(b.max_ns),
        hist,
    }
}

/// A point-in-time copy of one thread's phase aggregates (or a merged
/// tally).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSnapshot {
    aggs: [PhaseAgg; PHASE_COUNT],
}

impl Default for PhaseSnapshot {
    fn default() -> Self {
        PhaseSnapshot {
            aggs: [PhaseAgg::default(); PHASE_COUNT],
        }
    }
}

impl PhaseSnapshot {
    /// The aggregate recorded for `phase`.
    pub fn get(&self, phase: Phase) -> &PhaseAgg {
        &self.aggs[phase as usize]
    }

    /// Total recorded nanoseconds for `phase`.
    pub fn total_ns(&self, phase: Phase) -> u64 {
        self.aggs[phase as usize].total_ns
    }

    /// Aggregates accumulated between `earlier` and `self` on one
    /// thread: count/total/histogram subtract; `min_ns`/`max_ns` are
    /// copied from `self` (extrema are not differentiable, and the
    /// whole-window extrema are the useful ones for a delta report).
    pub fn delta_since(&self, earlier: &PhaseSnapshot) -> PhaseSnapshot {
        let mut out = *self;
        for (agg, early) in out.aggs.iter_mut().zip(earlier.aggs.iter()) {
            agg.count = agg.count.wrapping_sub(early.count);
            agg.total_ns = agg.total_ns.wrapping_sub(early.total_ns);
            for (h, &e) in agg.hist.iter_mut().zip(early.hist.iter()) {
                *h = h.wrapping_sub(e);
            }
        }
        out
    }

    /// Element-wise aggregate merge — the associative worker fold.
    pub fn merge(&self, other: &PhaseSnapshot) -> PhaseSnapshot {
        let mut out = PhaseSnapshot::default();
        for (i, agg) in out.aggs.iter_mut().enumerate() {
            *agg = merge_agg(&self.aggs[i], &other.aggs[i]);
        }
        out
    }

    /// Renders `{"phase":{"count":…,"total_ns":…,"min_ns":…,"max_ns":…,
    /// "hist":[…]},…}` with the histogram's trailing zero buckets
    /// trimmed.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, &phase) in Phase::ALL.iter().enumerate() {
            let a = self.get(phase);
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"total_ns\":{},\"min_ns\":{},\"max_ns\":{},\"hist\":[",
                phase.name(),
                a.count,
                a.total_ns,
                a.min_ns,
                a.max_ns
            ));
            let last = a.hist.iter().rposition(|&h| h != 0).map_or(0, |p| p + 1);
            for (k, h) in a.hist[..last].iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                out.push_str(&h.to_string());
            }
            out.push_str("]}");
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket(0), 0);
        assert_eq!(bucket(1), 1);
        assert_eq!(bucket(2), 2);
        assert_eq!(bucket(3), 2);
        assert_eq!(bucket(1024), 11);
        assert_eq!(bucket(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn record_merge_and_delta_agree() {
        let mut a = PhaseAgg::default();
        a.record(10);
        a.record(100);
        let mut b = PhaseAgg::default();
        b.record(3);
        let m = merge_agg(&a, &b);
        assert_eq!(m.count, 3);
        assert_eq!(m.total_ns, 113);
        assert_eq!(m.min_ns, 3);
        assert_eq!(m.max_ns, 100);
        // Merging an empty aggregate keeps the extrema intact.
        let e = merge_agg(&a, &PhaseAgg::default());
        assert_eq!(e.min_ns, 10);
        assert_eq!(e.max_ns, 100);

        let mut early = PhaseSnapshot::default();
        early.aggs[Phase::Undo as usize] = b;
        let mut late = PhaseSnapshot::default();
        late.aggs[Phase::Undo as usize] = m;
        let d = late.delta_since(&early);
        assert_eq!(d.get(Phase::Undo).count, 2);
        assert_eq!(d.get(Phase::Undo).total_ns, 110);
    }

    #[test]
    fn json_names_every_phase() {
        let json = PhaseSnapshot::default().to_json();
        for p in Phase::ALL {
            assert!(json.contains(p.name()), "{} missing from json", p.name());
        }
    }

    #[cfg(feature = "obs-wallclock")]
    #[test]
    fn armed_scope_records_on_this_thread() {
        // Run on a dedicated thread so other tests' scopes (same
        // process) cannot interleave with the before/after delta.
        std::thread::spawn(|| {
            set_enabled(true);
            let before = snapshot();
            drop(scope(Phase::Bake));
            set_enabled(false);
            let d = snapshot().delta_since(&before);
            assert_eq!(d.get(Phase::Bake).count, 1);
        })
        .join()
        .unwrap();
    }
}
