//! Trace capture: a bounded per-thread buffer of phase-scope events,
//! rendered as `chrome://tracing` / Perfetto-compatible JSON
//! (`{"traceEvents":[...]}` with complete `"ph":"X"` events) so one
//! evaluation chain's splice behaviour can be eyeballed on a timeline.
//!
//! Capture is single-consumer by design: [`start`] clears the calling
//! thread's buffer and arms capture process-wide, [`stop`] disarms and
//! drains the calling thread's events. Only scopes that ran while a
//! capture was live (and the `obs-wallclock` feature compiled the
//! timers) produce events.

use crate::phase::Phase;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Hard cap on buffered events per thread — a runaway capture degrades
/// to dropping the tail instead of exhausting memory.
const TRACE_CAP: usize = 1 << 20;

/// One completed phase scope on the capture timeline.
#[derive(Debug, Clone, Copy)]
pub struct TraceEvent {
    /// The phase the scope timed.
    pub phase: Phase,
    /// Start offset from the capture base, in nanoseconds.
    pub start_ns: u64,
    /// Scope duration in nanoseconds.
    pub dur_ns: u64,
}

static TRACING: AtomicBool = AtomicBool::new(false);
static BASE: OnceLock<Instant> = OnceLock::new();

thread_local! {
    static EVENTS: RefCell<Vec<TraceEvent>> = const { RefCell::new(Vec::new()) };
}

/// Clears the calling thread's buffer and arms capture.
pub fn start() {
    BASE.get_or_init(Instant::now);
    let _ = EVENTS.try_with(|ev| ev.borrow_mut().clear());
    TRACING.store(true, Ordering::Relaxed);
}

/// Disarms capture and drains the calling thread's events.
pub fn stop() -> Vec<TraceEvent> {
    TRACING.store(false, Ordering::Relaxed);
    EVENTS
        .try_with(|ev| std::mem::take(&mut *ev.borrow_mut()))
        .unwrap_or_default()
}

/// Appends a completed scope when a capture is live. Called by the
/// phase plane on scope drop.
#[cfg_attr(not(feature = "obs-wallclock"), allow(dead_code))]
pub(crate) fn note(phase: Phase, start: Instant, dur_ns: u64) {
    if !TRACING.load(Ordering::Relaxed) {
        return;
    }
    let Some(base) = BASE.get() else { return };
    let start_ns = start
        .saturating_duration_since(*base)
        .as_nanos()
        .min(u64::MAX as u128) as u64;
    let _ = EVENTS.try_with(|ev| {
        let mut ev = ev.borrow_mut();
        if ev.len() < TRACE_CAP {
            ev.push(TraceEvent {
                phase,
                start_ns,
                dur_ns,
            });
        }
    });
}

/// Renders events as a chrome://tracing JSON object (timestamps and
/// durations in microseconds, as the format requires).
pub fn render_chrome(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, e) in events.iter().enumerate() {
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"incdes\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
             \"pid\":0,\"tid\":0}}{}\n",
            e.phase.name(),
            e.start_ns as f64 / 1000.0,
            e.dur_ns as f64 / 1000.0,
            if i + 1 < events.len() { "," } else { "" },
        ));
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_valid_shape() {
        let events = [
            TraceEvent {
                phase: Phase::Splice,
                start_ns: 1500,
                dur_ns: 250,
            },
            TraceEvent {
                phase: Phase::Slack,
                start_ns: 2000,
                dur_ns: 1000,
            },
        ];
        let json = render_chrome(&events);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"splice\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"dur\":1.000"));
        assert!(json.trim_end().ends_with("]}"));
        // Exactly one comma separator for two events.
        assert_eq!(json.matches("},\n").count(), 1);
    }

    #[test]
    fn stop_without_start_is_empty() {
        assert!(stop().is_empty());
    }
}
