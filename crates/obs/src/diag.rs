//! Shared stderr diagnostics: the warn-once channel and the checked
//! env-var parsing every `INCDES_*` override uses (previously two
//! copy-pasted `Once`-guarded parsers in `incdes_mapping`).

use std::collections::BTreeSet;
use std::sync::{Mutex, OnceLock};

static WARNED: OnceLock<Mutex<BTreeSet<String>>> = OnceLock::new();

/// Prints `message` to stderr the first time `key` is seen in this
/// process; later calls with the same key are silent. Returns whether
/// the message was printed (so once-ness is testable).
pub fn warn_once(key: &str, message: &str) -> bool {
    let warned = WARNED.get_or_init(|| Mutex::new(BTreeSet::new()));
    let mut warned = warned.lock().unwrap_or_else(|e| e.into_inner());
    if warned.insert(key.to_string()) {
        eprintln!("{message}");
        true
    } else {
        false
    }
}

/// Digits-only `usize` parse: surrounding whitespace is tolerated,
/// signs, decimals and anything else are not — the exact strictness
/// both `INCDES_*` overrides have always had.
pub fn parse_usize(raw: &str) -> Option<usize> {
    raw.trim().parse::<usize>().ok()
}

/// Reads the environment variable `var` as a `usize`. Unset returns
/// `None` silently; a set-but-unparsable value warns once (keyed by
/// `var`, with `expected` describing the accepted range) and also
/// returns `None`, so callers keep their built-in default.
pub fn env_usize(var: &str, expected: &str) -> Option<usize> {
    let raw = std::env::var(var).ok()?;
    match parse_usize(&raw) {
        Some(n) => Some(n),
        None => {
            warn_once(
                var,
                &format!("incdes: ignoring unparsable {var}={raw:?}: {expected}"),
            );
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_usize_accepts_digits_only() {
        assert_eq!(parse_usize("0"), Some(0));
        assert_eq!(parse_usize("4"), Some(4));
        assert_eq!(parse_usize(" 8 "), Some(8));
        assert_eq!(parse_usize(""), None);
        assert_eq!(parse_usize("four"), None);
        assert_eq!(parse_usize("-1"), None);
        assert_eq!(parse_usize("1.5"), None);
    }

    #[test]
    fn warn_once_fires_exactly_once_per_key() {
        assert!(warn_once("obs-test-key-a", "first"));
        assert!(!warn_once("obs-test-key-a", "second"));
        assert!(warn_once("obs-test-key-b", "different key still fires"));
    }

    #[test]
    fn env_usize_reads_and_warns_once() {
        std::env::set_var("INCDES_OBS_TEST_GOOD", "12");
        assert_eq!(env_usize("INCDES_OBS_TEST_GOOD", "an integer"), Some(12));
        std::env::set_var("INCDES_OBS_TEST_BAD", "nope");
        assert_eq!(env_usize("INCDES_OBS_TEST_BAD", "an integer"), None);
        // The warn key is consumed now; the second read stays silent
        // (observable via warn_once's return on the same key).
        assert_eq!(env_usize("INCDES_OBS_TEST_BAD", "an integer"), None);
        assert!(!warn_once("INCDES_OBS_TEST_BAD", "already warned"));
        assert_eq!(env_usize("INCDES_OBS_TEST_UNSET", "an integer"), None);
    }
}
