//! The deterministic counter plane.
//!
//! A counter is bumped at exactly one (or a handful of) well-defined
//! program points, so its value after a workload is a pure function of
//! the work done — never of wall-clock, scheduling, or thread
//! interleaving. Storage is a per-thread array of [`Cell`]s: bumping is
//! a non-atomic load/store, and parallel sections stay deterministic by
//! having each worker [`snapshot`] its own tally (fresh scoped threads
//! start at zero) and the owner [`merge_into_current`] them — an
//! associative, commutative element-wise sum, so the fold order cannot
//! matter.
//!
//! To add a counter: append a `Variant => "json_name"` line to the
//! `counters!` block below (the registry), then `bump`/`add` it at the
//! event site. Everything else — `ALL`, snapshots, JSON — follows.

use std::cell::Cell;

macro_rules! counters {
    ($($(#[$doc:meta])* $variant:ident => $name:literal,)+) => {
        /// A registered monotonic event counter. The discriminant is
        /// the index into snapshots and the thread-local cells.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        #[repr(usize)]
        pub enum Counter {
            $($(#[$doc])* $variant,)+
        }

        /// Number of registered counters.
        pub const COUNTER_COUNT: usize = Counter::ALL.len();

        impl Counter {
            /// Every registered counter, in declaration (= snapshot) order.
            pub const ALL: &'static [Counter] = &[$(Counter::$variant),+];

            /// The stable snake_case name used in JSON output.
            pub const fn name(self) -> &'static str {
                match self {
                    $(Counter::$variant => $name,)+
                }
            }
        }
    };
}

counters! {
    /// Placement steps reused verbatim from a run record (live or cached).
    SpliceStepsSpliced => "splice_steps_spliced",
    /// Live-record suffix steps unwound in place by a delta run.
    SpliceStepsUndone => "splice_steps_undone",
    /// Source-prefix steps replayed into the timelines (rebase or cached splice).
    SpliceStepsReplayed => "splice_steps_replayed",
    /// Delta runs that bulk-reset from the baked base instead of undoing.
    DeltaRebases => "delta_rebases",
    /// Preferred-predecessor fingerprints served from the record cache.
    RecordCacheHits => "record_cache_hits",
    /// Live records snapshotted into the record cache.
    RecordCachePromotions => "record_cache_promotions",
    /// Record-cache entries evicted (LRU or capacity shrink).
    RecordCacheEvictions => "record_cache_evictions",
    /// Preferred fingerprints not in the cache — fell back to the live record.
    RecordCacheFallbacks => "record_cache_fallbacks",
    /// Evaluations answered from the solution memo.
    MemoHits => "memo_hits",
    /// Evaluations inserted into the solution memo.
    MemoInserts => "memo_inserts",
    /// Solution-memo entries evicted by the stamp-median retain.
    MemoEvictions => "memo_evictions",
    /// C1 container multisets patched in place (changed lists only).
    C1Patched => "c1_patched",
    /// C1 container multisets rebuilt from scratch.
    C1Repacked => "c1_repacked",
    /// C2 terms answered by `Arc` pointer identity without recomputing.
    C2IdentityHits => "c2_identity_hits",
    /// C2 `t_min` windows recomputed inside a differential update.
    C2WindowsRecomputed => "c2_windows_recomputed",
    /// C2 per-resource entries built from scratch (cold slot or new grid).
    C2FullRebuilds => "c2_full_rebuilds",
    /// Slack gap lists aliased (frozen base or previous profile).
    SlackGapsAliased => "slack_gaps_aliased",
    /// Slack gap lists re-derived from the live timelines.
    SlackGapsMaterialized => "slack_gaps_materialized",
    /// Bus window lists aliased (frozen base or previous profile).
    BusWindowsAliased => "bus_windows_aliased",
    /// Bus window lists derived by the linear patch over the baked list.
    BusWindowsPatched => "bus_windows_patched",
    /// Ready-heap pushes across full, delta and spliced seeding paths.
    HeapPushes => "heap_pushes",
    /// Ready-heap pops by the list-scheduling loop.
    HeapPops => "heap_pops",
    /// `FrozenBase` bakes (frozen schedule replayed + validated).
    BaseBakes => "base_bakes",
    /// Store-backend faults injected by a `FaultyBackend` (soak runs).
    FaultInjected => "fault_injected",
    /// Store puts retried after a transient I/O error.
    StoreRetries => "store_retries",
    /// Store puts abandoned after exhausting their retry budget.
    StorePutFailures => "store_put_failures",
    /// Scenario attempts that panicked (isolated, never campaign-fatal).
    ScenarioPanics => "scenario_panics",
    /// Scenario re-attempts after a panicked attempt.
    ScenarioRetries => "scenario_retries",
    /// Campaigns that entered store-degraded (compute-through) mode.
    DegradedMode => "degraded_mode",
    /// Freshly allocated gap-list `Vec`s (`PeTimeline::gaps()` calls) —
    /// the hot paths build shared lists straight from the gap iterator,
    /// so this counts only the cold/compat allocations.
    FreshGapLists => "fresh_gap_lists",
    /// Timeline overlay merges into the consolidated base layer.
    TimelineConsolidations => "timeline_consolidations",
    /// Job arenas patched in place from a changed-variable hint.
    ArenaPatched => "arena_patched",
    /// Job arenas rebuilt by a full expansion.
    ArenaExpansions => "arena_expansions",
}

thread_local! {
    static CELLS: [Cell<u64>; COUNTER_COUNT] = [const { Cell::new(0) }; COUNTER_COUNT];
}

/// Increments `counter` by one on the calling thread.
#[inline]
pub fn bump(counter: Counter) {
    add(counter, 1);
}

/// Adds `n` to `counter` on the calling thread. Silently a no-op during
/// thread-local teardown (a destructor running after the cells died).
#[inline]
pub fn add(counter: Counter, n: u64) {
    let _ = CELLS.try_with(|cells| {
        let cell = &cells[counter as usize];
        cell.set(cell.get().wrapping_add(n));
    });
}

/// Copies the calling thread's counter cells. A fresh (scoped worker)
/// thread snapshots all zeros, so its final snapshot *is* its tally.
pub fn snapshot() -> CounterSnapshot {
    CELLS
        .try_with(|cells| CounterSnapshot {
            counts: std::array::from_fn(|i| cells[i].get()),
        })
        .unwrap_or_default()
}

/// Folds a harvested worker tally onto the calling thread's cells. The
/// sum is associative and commutative, so the order workers are joined
/// in cannot change the merged totals.
pub fn merge_into_current(snap: &CounterSnapshot) {
    let _ = CELLS.try_with(|cells| {
        for (cell, &n) in cells.iter().zip(snap.counts.iter()) {
            cell.set(cell.get().wrapping_add(n));
        }
    });
}

/// A point-in-time copy of one thread's counters (or a merged tally).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSnapshot {
    counts: [u64; COUNTER_COUNT],
}

impl Default for CounterSnapshot {
    fn default() -> Self {
        CounterSnapshot {
            counts: [0; COUNTER_COUNT],
        }
    }
}

impl CounterSnapshot {
    /// The recorded value of `counter`.
    pub fn get(&self, counter: Counter) -> u64 {
        self.counts[counter as usize]
    }

    /// Counts accumulated between `earlier` and `self` on one thread
    /// (wrapping, like the cells themselves).
    pub fn delta_since(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            counts: std::array::from_fn(|i| self.counts[i].wrapping_sub(earlier.counts[i])),
        }
    }

    /// Element-wise sum — the associative fold worker tallies use.
    pub fn merge(&self, other: &CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            counts: std::array::from_fn(|i| self.counts[i].wrapping_add(other.counts[i])),
        }
    }

    /// `(counter, value)` pairs in registry order.
    pub fn iter(&self) -> impl Iterator<Item = (Counter, u64)> + '_ {
        Counter::ALL.iter().map(move |&c| (c, self.get(c)))
    }

    /// Renders `{"name":value,...}` in registry order (hand-rolled so
    /// the leaf crate stays dependency-free).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (c, n)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(c.name());
            out.push_str("\":");
            out.push_str(&n.to_string());
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_delta_are_exact() {
        let before = snapshot();
        bump(Counter::MemoHits);
        add(Counter::HeapPushes, 3);
        let d = snapshot().delta_since(&before);
        assert_eq!(d.get(Counter::MemoHits), 1);
        assert_eq!(d.get(Counter::HeapPushes), 3);
        assert_eq!(d.get(Counter::BaseBakes), 0);
    }

    #[test]
    fn merge_is_commutative_and_matches_cells() {
        let mut a = CounterSnapshot::default();
        a.counts[Counter::MemoHits as usize] = 5;
        let mut b = CounterSnapshot::default();
        b.counts[Counter::MemoHits as usize] = 2;
        b.counts[Counter::HeapPops as usize] = 7;
        assert_eq!(a.merge(&b), b.merge(&a));
        let before = snapshot();
        merge_into_current(&a.merge(&b));
        let d = snapshot().delta_since(&before);
        assert_eq!(d.get(Counter::MemoHits), 7);
        assert_eq!(d.get(Counter::HeapPops), 7);
    }

    #[test]
    fn names_are_unique_and_json_lists_all() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), COUNTER_COUNT, "duplicate counter name");
        let json = CounterSnapshot::default().to_json();
        for c in Counter::ALL {
            assert!(json.contains(c.name()), "{} missing from json", c.name());
        }
    }
}
