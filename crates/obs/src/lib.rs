//! `incdes_obs` — the out-of-band observability layer.
//!
//! Every instrumented crate (`incdes_sched`, `incdes_metrics`,
//! `incdes_mapping`, `incdes_explore`) reports into two planes that are
//! invisible to the byte-stable artifacts (campaign reports, tables):
//!
//! * **[`counters`]** — deterministic monotonic event counters (splice
//!   steps, record-cache traffic, memo hits, C1/C2 cache outcomes,
//!   Arc-aliasing decisions, heap traffic). They are pure functions of
//!   the work performed, so tests can assert exact values and two runs
//!   of the same workload always agree — including across thread
//!   counts, because worker tallies are merged with an associative
//!   element-wise sum. Always compiled; the storage is plain
//!   thread-local `Cell`s, no atomics on the hot path.
//! * **[`phase`]** — wall-clock RAII scopes around the engine phases
//!   (undo/splice/re-place/slack/objective plus bake, priority refresh
//!   and memo lookup), aggregated into per-phase log₂-nanosecond
//!   histograms, with an optional [`trace`] capture that renders a
//!   `chrome://tracing`-compatible timeline of one evaluation chain.
//!   The timers are compiled only under the `obs-wallclock` cargo
//!   feature and armed only after [`phase::set_enabled`]`(true)`, so a
//!   default build pays nothing and a feature build pays one relaxed
//!   atomic load per scope while disabled.
//!
//! [`diag`] carries the shared warn-once stderr channel and the checked
//! env-var parsing the `INCDES_*` overrides use.
//!
//! Nothing in this crate writes to stdout: all output goes to stderr or
//! to side files chosen by the caller, which is what keeps the
//! byte-identical report guarantee intact under profiling.

pub mod counters;
pub mod diag;
pub mod phase;
pub mod trace;
