//! The evaluation-engine benchmark behind `figures bench-eval`.
//!
//! Measures `MappingContext::evaluate` throughput (evaluations per
//! second) on three pipelines — the naive one (`schedule()` +
//! `SlackProfile::from_table` + `objective::evaluate`, re-replaying the
//! frozen schedule every call), the full engine (`FrozenBase` +
//! `Scheduler` + memo, every raw schedule resetting from the base —
//! `with_full_evaluation()`), and the default **delta** path
//! (single-move neighbors splice the previous run and repack only the
//! invalidated C1 containers) — per system size and per strategy, on a
//! frozen base system built from a paper preset. The `figures` binary
//! renders the rows and persists them as `BENCH_eval.json` so the
//! speedups are tracked artifacts, and fails CI unless the delta path
//! beats the full engine on the largest frozen base.
//!
//! The paths are also cross-checked here: a sample of the evaluation
//! stream and every strategy outcome must agree across all pipelines
//! before a row is reported.

use crate::{build_base_system, current_application, BaseSystem};
use incdes_mapping::{
    initial_mapping, run_strategy, MappingContext, MhConfig, Move, SaConfig, SearchParallelism,
    Solution, Strategy,
};
use incdes_model::time::hyperperiod;
use incdes_model::{AppId, Application, PeId, ProcRef, Time};
use incdes_obs::phase::{self, Phase, PhaseSnapshot};
use incdes_obs::trace;
use incdes_sched::{MsgRef, ScheduleTable};
use incdes_synth::paper::PaperPreset;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

/// One row of the raw-throughput comparison: the same deterministic
/// stream of design alternatives evaluated through both pipelines.
///
/// The row axis is the *system* size — the frozen processes already
/// committed — with a fixed mid-size current application, because that
/// is the paper's workload: the existing system grows over a product's
/// lifetime while each incremental addition stays modest, and the naive
/// pipeline re-replays that whole frozen history on every evaluation.
#[derive(Debug, Clone)]
pub struct EvalBenchRow {
    /// Frozen processes committed to the system before the current app.
    pub size: usize,
    /// Processes in the current application.
    pub current: usize,
    /// Frozen jobs replayed by the naive path on every evaluation.
    pub frozen_jobs: usize,
    /// Evaluations timed per pipeline.
    pub evals: usize,
    /// Naive pipeline throughput.
    pub naive_evals_per_sec: f64,
    /// Full-engine pipeline throughput (PR 4 behavior).
    pub engine_evals_per_sec: f64,
    /// Delta pipeline throughput (the default path).
    pub delta_evals_per_sec: f64,
    /// `engine / naive`.
    pub speedup: f64,
    /// `delta / naive`.
    pub delta_speedup: f64,
    /// `delta / engine` — the multiplier this PR is about.
    pub delta_vs_engine: f64,
    /// Engine evaluations answered from the solution memo.
    pub memo_hits: usize,
    /// Raw schedules the engine actually executed.
    pub raw_schedules: usize,
    /// Raw schedules that took the delta path (delta context).
    pub delta_schedules: usize,
    /// Placement steps spliced verbatim from run records.
    pub spliced_steps: usize,
    /// Per-phase wall-clock of one extra profiled delta pass (`None`
    /// unless the benchmark ran with profiling on).
    pub profile: Option<PhaseBreakdown>,
}

/// Per-phase wall-clock of one profiled delta evaluation pass — the
/// `--profile` column set of `BENCH_eval.json`. All times come from the
/// `obs` timer plane; the pass is *extra* (run after the timed
/// repetitions), so profiling never skews the reported throughputs.
#[derive(Debug, Clone, Copy)]
pub struct PhaseBreakdown {
    /// Splice-point rollback (timeline truncation).
    pub undo_ms: f64,
    /// Record ranking, diffing and step replay/splicing.
    pub splice_ms: f64,
    /// Priority-driven placement of the remaining jobs.
    pub replace_ms: f64,
    /// Slack-profile extraction.
    pub slack_ms: f64,
    /// Objective scoring through the C1/C2 caches.
    pub objective_ms: f64,
    /// Memo lookups and insertions (outside the five core phases).
    pub memo_ms: f64,
    /// Frozen-base bakes (amortized across the pass).
    pub bake_ms: f64,
    /// Priority recomputation on cost changes.
    pub priority_refresh_ms: f64,
    /// Wall-clock of the whole profiled pass.
    pub wall_ms: f64,
    /// Estimated wall-clock the timers themselves added: the measured
    /// out-of-interval cost of one armed scope (two clock reads plus
    /// bookkeeping, calibrated on this host at profile time) times the
    /// number of scopes the pass recorded. At a few microseconds per
    /// evaluation this is a double-digit percentage of the pass — the
    /// resolution floor of RAII timing.
    pub timer_overhead_ms: f64,
    /// `(undo + splice + replace + slack + objective)` over the pass
    /// wall-clock minus the separately-reported memo and bake planes
    /// and the calibrated timer self-overhead — the fraction of the
    /// *delta-evaluation* wall-clock the five core phases explain.
    /// Capped at 1.0 (the calibration is a host-level estimate).
    pub coverage: f64,
}

impl PhaseBreakdown {
    fn from_snapshot(snap: &PhaseSnapshot, wall_ms: f64, scope_overhead_ns: f64) -> PhaseBreakdown {
        let ms = |p: Phase| snap.total_ns(p) as f64 / 1e6;
        let core = ms(Phase::Undo)
            + ms(Phase::Splice)
            + ms(Phase::RePlace)
            + ms(Phase::Slack)
            + ms(Phase::Objective);
        let scopes: u64 = Phase::ALL.iter().map(|&p| snap.get(p).count).sum();
        let timer_overhead_ms = scopes as f64 * scope_overhead_ns / 1e6;
        // Memo service and base bakes are measured planes of their own
        // (their columns stand alone); what the five phases must
        // explain is the remaining delta-evaluation wall-clock.
        let denom = (wall_ms - ms(Phase::Memo) - ms(Phase::Bake) - timer_overhead_ms).max(1e-9);
        PhaseBreakdown {
            undo_ms: ms(Phase::Undo),
            splice_ms: ms(Phase::Splice),
            replace_ms: ms(Phase::RePlace),
            slack_ms: ms(Phase::Slack),
            objective_ms: ms(Phase::Objective),
            memo_ms: ms(Phase::Memo),
            bake_ms: ms(Phase::Bake),
            priority_refresh_ms: ms(Phase::PriorityRefresh),
            wall_ms,
            timer_overhead_ms,
            coverage: (core / denom).min(1.0),
        }
    }
}

/// Measures what one armed [`phase::scope`] costs *around* its recorded
/// interval on this host: a tight loop of empty scopes is timed with
/// one outer clock, the nanoseconds the scopes recorded for themselves
/// are subtracted, and the difference is the per-scope out-of-interval
/// overhead (clock-read pair + aggregate bookkeeping). The profiled
/// pass uses it to discount timer self-cost from phase coverage.
fn calibrate_scope_overhead_ns() -> f64 {
    const CAL_SCOPES: usize = 64 * 1024;
    let before = phase::snapshot();
    phase::set_enabled(true);
    let start = Instant::now();
    for _ in 0..CAL_SCOPES {
        let _scope = phase::scope(Phase::Bake);
    }
    let wall_ns = start.elapsed().as_nanos() as f64;
    phase::set_enabled(false);
    let recorded_ns = phase::snapshot().delta_since(&before).total_ns(Phase::Bake) as f64;
    ((wall_ns - recorded_ns) / CAL_SCOPES as f64).max(0.0)
}

/// One row of the per-strategy comparison: a full `run_strategy` on a
/// naive context versus an engine context.
#[derive(Debug, Clone)]
pub struct StrategyBenchRow {
    /// Processes in the current application.
    pub size: usize,
    /// Strategy display name (`AH`, `MH`, `SA`).
    pub strategy: &'static str,
    /// Wall-clock of the naive-context run, in milliseconds.
    pub naive_ms: f64,
    /// Wall-clock of the full-engine-context run, in milliseconds.
    pub engine_ms: f64,
    /// Wall-clock of the delta-context (default) run, in milliseconds.
    pub delta_ms: f64,
    /// `naive_ms / engine_ms`.
    pub speedup: f64,
    /// `naive_ms / delta_ms`.
    pub delta_speedup: f64,
    /// `engine_ms / delta_ms` — ≥ 1 when the delta path wins the
    /// strategy at wall-clock, the gate `figures bench-eval` enforces
    /// for MH and SA on the largest size.
    pub delta_vs_engine: f64,
    /// Wall-clock of the parallel-mode delta run (batched MH widening
    /// rounds over the benchmark's thread count; SA stays on one chain
    /// so its semantics — and this comparison — stay exact).
    pub par_ms: f64,
    /// `delta_ms / par_ms` — > 1 when fanning candidate evaluation out
    /// over threads beats the sequential delta path. On a single
    /// hardware thread this hovers just below 1 (scoped-thread
    /// overhead), which is why the `figures bench-eval` gate only
    /// applies when the hardware covers the requested thread count.
    pub par_vs_delta: f64,
    /// Evaluations the strategy spent (identical on every path).
    pub evaluations: usize,
}

/// The full benchmark result.
#[derive(Debug, Clone)]
pub struct EvalBench {
    /// Raw-throughput rows, one per current-application size.
    pub raw: Vec<EvalBenchRow>,
    /// Per-strategy rows (AH, MH, SA at every size).
    pub strategies: Vec<StrategyBenchRow>,
    /// Thread count of the parallel-mode strategy runs.
    pub threads: usize,
}

/// Ingredients of one benchmark scenario.
struct Scenario {
    base: BaseSystem,
    app: Application,
    frozen: ScheduleTable,
    horizon: Time,
    id: AppId,
}

impl Scenario {
    fn build(preset: &PaperPreset, size: usize, seed: u64) -> Scenario {
        let base = build_base_system(preset, seed);
        let app = current_application(preset, size, seed);
        let mut periods = vec![base.system.horizon()];
        periods.extend(app.graphs.iter().map(|g| g.period));
        let horizon = hyperperiod(periods).expect("periods are harmonic and small");
        let frozen = base
            .system
            .table()
            .replicate_to(base.system.arch(), horizon)
            .expect("horizon is a multiple of the committed horizon");
        let id = AppId(base.system.app_count() as u32);
        Scenario {
            base,
            app,
            frozen,
            horizon,
            id,
        }
    }

    fn context(&self) -> MappingContext<'_> {
        MappingContext::new(
            self.base.system.arch(),
            self.id,
            &self.app,
            Some(&self.frozen),
            self.horizon,
            &self.base.future,
            &self.base.weights,
        )
    }
}

/// A deterministic SA-like stream of design alternatives: a random walk
/// of remap/slack moves from the initial mapping, with roughly a quarter
/// of the entries revisiting an earlier state (the workload pattern the
/// memo exists for).
fn solution_stream(scenario: &Scenario, count: usize) -> Vec<Solution> {
    let scratch = scenario.context();
    let initial = initial_mapping(&scratch).expect("bench scenario is feasible");
    let mut rng = ChaCha8Rng::seed_from_u64(0xBE_EC);
    let procs: Vec<(ProcRef, Vec<PeId>)> = scenario
        .app
        .processes()
        .map(|(r, p)| {
            let pes: Vec<PeId> = p
                .wcets
                .iter()
                .map(|(pe, _)| pe)
                .filter(|pe| pe.index() < scenario.base.system.arch().pe_count())
                .collect();
            (r, pes)
        })
        .collect();
    let msgs: Vec<MsgRef> = scenario
        .app
        .graphs
        .iter()
        .enumerate()
        .flat_map(|(gi, g)| g.dag().edge_ids().map(move |e| MsgRef::new(gi, e)))
        .collect();

    let mut stream = vec![initial.clone()];
    let mut current = initial;
    while stream.len() < count {
        if stream.len() > 4 && rng.gen_range(0u32..100) < 25 {
            // Revisit an earlier state.
            let back = rng.gen_range(0..stream.len());
            stream.push(stream[back].clone());
            continue;
        }
        let mv = loop {
            let dice = rng.gen_range(0u32..100);
            if dice < 60 {
                let (pr, pes) = &procs[rng.gen_range(0..procs.len())];
                let candidates: Vec<PeId> = pes
                    .iter()
                    .copied()
                    .filter(|&pe| current.mapping.pe_of(*pr) != Some(pe))
                    .collect();
                if let Some(&to) = candidates.choose(&mut rng) {
                    break Move::Remap { proc_ref: *pr, to };
                }
            } else if dice < 85 {
                let (pr, _) = &procs[rng.gen_range(0..procs.len())];
                let h = current.hints.proc_gap(*pr);
                break Move::ProcSlack {
                    proc_ref: *pr,
                    gap: if h > 0 && rng.gen_bool(0.5) {
                        h - 1
                    } else {
                        h + 1
                    },
                };
            } else if !msgs.is_empty() {
                let mr = msgs[rng.gen_range(0..msgs.len())];
                let h = current.hints.msg_slot(mr);
                break Move::MsgSlack {
                    msg: mr,
                    slot: if h > 0 && rng.gen_bool(0.5) {
                        h - 1
                    } else {
                        h + 1
                    },
                };
            }
        };
        current.apply(&mv);
        stream.push(current.clone());
    }
    stream
}

/// Times competing tiers (one `prepare` closure each, a shared `work`)
/// over `reps` *interleaved* rounds: every round prepares and times all
/// tiers back-to-back, so slow drift of the host (frequency scaling, a
/// noisy neighbor waking up) hits every tier instead of whichever
/// happened to run last — the property the delta-vs-engine wall-clock
/// gates lean on. Per tier, setup stays off the clock and the minimum
/// across rounds discards scheduler-noise outliers, as criterion
/// would; the returned product and output are the last round's. The
/// result vector is in tier order.
fn time_min<C, T>(
    reps: usize,
    tiers: &mut [&mut dyn FnMut() -> C],
    mut work: impl FnMut(&C) -> T,
) -> Vec<(f64, C, T)> {
    assert!(reps > 0, "at least one repetition");
    let mut results: Vec<(f64, Option<(C, T)>)> =
        tiers.iter().map(|_| (f64::INFINITY, None)).collect();
    for _ in 0..reps {
        for (tier, slot) in tiers.iter_mut().zip(&mut results) {
            let c = tier();
            let t = Instant::now();
            let out = work(&c);
            slot.0 = slot.0.min(t.elapsed().as_secs_f64());
            slot.1 = Some((c, out));
        }
    }
    results
        .into_iter()
        .map(|(best, last)| {
            let (c, out) = last.expect("reps > 0");
            (best, c, out)
        })
        .collect()
}

/// Runs the benchmark: raw-throughput rows for every size of the preset
/// plus per-strategy rows, all on `preset.seeds[0]`. With `profile`
/// set, each size runs one *extra* delta pass with the `obs` phase
/// timers armed and reports the per-phase breakdown (the timed
/// repetitions themselves always run with timers off).
///
/// # Panics
///
/// Panics if the two pipelines ever disagree on a result — the speedup
/// of a wrong answer is not worth reporting.
pub fn run_eval_bench(
    preset: &PaperPreset,
    evals_per_size: usize,
    mh_cfg: &MhConfig,
    sa_cfg: &SaConfig,
    threads: usize,
    profile: bool,
) -> EvalBench {
    // One chain and a fixed exchange period keep the parallel mode
    // semantically identical to the sequential delta path (same
    // solution, cost, evaluation count), so the wall-clock comparison
    // below measures the batching alone.
    let par = SearchParallelism::Parallel {
        threads: threads.max(1),
        batch_cutover: 0,
        sa_chains: 1,
        sa_exchange_period: 64,
    };
    let seed = preset.seeds[0];
    let mut raw = Vec::new();
    let mut strategies = Vec::new();
    // Calibrated once per bench run, before any profiled pass snapshots
    // its baseline (the calibration scopes land in this thread's totals,
    // which every row discounts via `delta_since`).
    let scope_overhead_ns = profile.then(calibrate_scope_overhead_ns).unwrap_or(0.0);

    // Raw throughput: system-size sweep (a quarter, half and all of the
    // preset's existing system — the preset's own base is the largest
    // that is guaranteed to fit) around a fixed mid-size current app.
    let current = preset.current_sizes[preset.current_sizes.len() / 2];
    let system_sizes = [
        preset.existing_processes / 4,
        preset.existing_processes / 2,
        preset.existing_processes,
    ];
    for system_size in system_sizes {
        let mut sized = preset.clone();
        sized.existing_processes = system_size;
        let scenario = Scenario::build(&sized, current, seed);
        let stream = solution_stream(&scenario, evals_per_size);

        // Differential check on a sample before anything is timed.
        {
            let naive = scenario.context().with_naive_evaluation();
            let engine = scenario.context().with_full_evaluation();
            let delta = scenario.context();
            for sol in stream.iter().take(16) {
                match (
                    naive.evaluate(sol),
                    engine.evaluate(sol),
                    delta.evaluate(sol),
                ) {
                    (Ok(a), Ok(b), Ok(c)) => {
                        assert_eq!(a.table, b.table, "engine/naive table mismatch");
                        assert_eq!(a.slack, b.slack, "engine/naive slack mismatch");
                        assert_eq!(a.cost, b.cost, "engine/naive cost mismatch");
                        assert_eq!(a.table, c.table, "delta/naive table mismatch");
                        assert_eq!(a.slack, c.slack, "delta/naive slack mismatch");
                        assert_eq!(a.cost, c.cost, "delta/naive cost mismatch");
                    }
                    (Err(a), Err(b), Err(c)) => {
                        assert_eq!(a, b, "engine/naive error mismatch");
                        assert_eq!(a, c, "delta/naive error mismatch");
                    }
                    (a, b, c) => {
                        panic!("pipeline feasibility mismatch: {a:?} vs {b:?} vs {c:?}")
                    }
                }
            }
        }

        // Each repetition uses a *fresh* context (a cold memo — the
        // revisit hits inside one pass are the workload, carrying a warm
        // memo across passes would not be).
        const REPS: usize = 3;
        let run_stream = |ctx: &MappingContext<'_>| {
            for sol in &stream {
                let _ = ctx.evaluate(sol);
            }
        };
        // Untimed warmup pass per pipeline (page cache, allocator).
        run_stream(&scenario.context().with_naive_evaluation());
        run_stream(&scenario.context().with_full_evaluation());
        run_stream(&scenario.context());

        let mut timed = time_min(
            REPS,
            &mut [
                &mut || scenario.context().with_naive_evaluation(),
                &mut || scenario.context().with_full_evaluation(),
                &mut || scenario.context(),
            ],
            run_stream,
        )
        .into_iter();
        let (naive_secs, _, ()) = timed.next().expect("three tiers");
        let (engine_secs, _, ()) = timed.next().expect("three tiers");
        let (delta_secs, delta_ctx, ()) = timed.next().expect("three tiers");
        let memo_hits = delta_ctx.memo_hit_count();
        let raw_schedules = delta_ctx.raw_schedule_count();
        let delta_schedules = delta_ctx.delta_schedule_count();
        let spliced_steps = delta_ctx.spliced_step_count();

        // One extra pass with the phase timers armed — strictly after
        // the timed repetitions so profiling overhead never touches the
        // reported throughputs.
        let profile_row = profile.then(|| {
            let ctx = scenario.context();
            let before = phase::snapshot();
            phase::set_enabled(true);
            let t = Instant::now();
            run_stream(&ctx);
            let wall_ms = t.elapsed().as_secs_f64() * 1e3;
            phase::set_enabled(false);
            let delta = phase::snapshot().delta_since(&before);
            PhaseBreakdown::from_snapshot(&delta, wall_ms, scope_overhead_ns)
        });

        raw.push(EvalBenchRow {
            size: system_size,
            current,
            frozen_jobs: scenario.frozen.jobs().len(),
            evals: stream.len(),
            naive_evals_per_sec: stream.len() as f64 / naive_secs.max(1e-9),
            engine_evals_per_sec: stream.len() as f64 / engine_secs.max(1e-9),
            delta_evals_per_sec: stream.len() as f64 / delta_secs.max(1e-9),
            speedup: naive_secs / engine_secs.max(1e-9),
            delta_speedup: naive_secs / delta_secs.max(1e-9),
            delta_vs_engine: engine_secs / delta_secs.max(1e-9),
            memo_hits,
            raw_schedules,
            delta_schedules,
            spliced_steps,
            profile: profile_row,
        });
    }

    // Full strategy runs: current-application sweep on the standard
    // base. Strategy wall-clocks are single runs of milliseconds, far
    // noisier than the amortized raw streams — each tier takes the
    // minimum over repetitions on a fresh (cold-memo) context, like the
    // raw rows, so the strategy-level gate is not at the mercy of one
    // scheduler hiccup.
    const STRAT_REPS: usize = 5;
    for &size in &preset.current_sizes {
        let scenario = Scenario::build(preset, size, seed);
        for strategy in [
            Strategy::AdHoc,
            Strategy::MappingHeuristic(*mh_cfg),
            Strategy::SimulatedAnnealing(*sa_cfg),
        ] {
            let time_strategy = |ctx: &MappingContext<'_>| run_strategy(ctx, &strategy);
            let mut timed = time_min(
                STRAT_REPS,
                &mut [
                    &mut || scenario.context().with_naive_evaluation(),
                    &mut || scenario.context().with_full_evaluation(),
                    &mut || scenario.context(),
                    &mut || scenario.context().with_parallelism(par),
                ],
                time_strategy,
            )
            .into_iter();
            let (naive_secs, _, naive_out) = timed.next().expect("four tiers");
            let (engine_secs, _, engine_out) = timed.next().expect("four tiers");
            let (delta_secs, _, delta_out) = timed.next().expect("four tiers");
            let (par_secs, _, par_out) = timed.next().expect("four tiers");
            let (naive_ms, engine_ms, delta_ms, par_ms) = (
                naive_secs * 1e3,
                engine_secs * 1e3,
                delta_secs * 1e3,
                par_secs * 1e3,
            );

            let evaluations = match (&naive_out, &engine_out, &delta_out) {
                (Ok(a), Ok(b), Ok(c)) => {
                    assert_eq!(
                        a.evaluation.cost,
                        b.evaluation.cost,
                        "strategy {} cost diverged between pipelines",
                        strategy.name()
                    );
                    assert_eq!(
                        a.evaluation.cost,
                        c.evaluation.cost,
                        "strategy {} cost diverged on the delta path",
                        strategy.name()
                    );
                    assert_eq!(a.solution, c.solution);
                    assert_eq!(a.stats.evaluations, b.stats.evaluations);
                    assert_eq!(a.stats.evaluations, c.stats.evaluations);
                    let p = par_out
                        .as_ref()
                        .expect("parallel mode agrees on feasibility");
                    assert_eq!(
                        a.evaluation.cost,
                        p.evaluation.cost,
                        "strategy {} cost diverged on the parallel path",
                        strategy.name()
                    );
                    assert_eq!(a.solution, p.solution);
                    assert_eq!(a.stats.evaluations, p.stats.evaluations);
                    c.stats.evaluations
                }
                (Err(_), Err(_), Err(_)) => {
                    assert!(par_out.is_err(), "parallel mode diverged on feasibility");
                    0
                }
                _ => panic!(
                    "strategy {} feasibility diverged between pipelines",
                    strategy.name()
                ),
            };
            strategies.push(StrategyBenchRow {
                size,
                strategy: strategy.name(),
                naive_ms,
                engine_ms,
                delta_ms,
                speedup: naive_ms / engine_ms.max(1e-9),
                delta_speedup: naive_ms / delta_ms.max(1e-9),
                delta_vs_engine: engine_ms / delta_ms.max(1e-9),
                par_ms,
                par_vs_delta: delta_ms / par_ms.max(1e-9),
                evaluations,
            });
        }
    }
    EvalBench {
        raw,
        strategies,
        threads,
    }
}

/// Captures a chrome://tracing-compatible trace of one delta evaluation
/// chain (`evals` solutions on the preset's full-size frozen base) and
/// returns the trace-event JSON. Arms the phase timers for the duration
/// of the capture; the chain itself is the same deterministic stream
/// `run_eval_bench` times.
pub fn capture_trace(preset: &PaperPreset, evals: usize) -> String {
    let seed = preset.seeds[0];
    let current = preset.current_sizes[preset.current_sizes.len() / 2];
    let scenario = Scenario::build(preset, current, seed);
    let stream = solution_stream(&scenario, evals);
    let ctx = scenario.context();
    phase::set_enabled(true);
    trace::start();
    for sol in &stream {
        let _ = ctx.evaluate(sol);
    }
    let events = trace::stop();
    phase::set_enabled(false);
    trace::render_chrome(&events)
}

/// Renders the benchmark as the `BENCH_eval.json` artifact.
pub fn render_json(bench: &EvalBench, preset_name: &str) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"eval_engine\",\n");
    out.push_str(&format!("  \"preset\": \"{preset_name}\",\n"));
    out.push_str(&format!("  \"search_threads\": {},\n", bench.threads));
    out.push_str("  \"raw\": [\n");
    for (i, r) in bench.raw.iter().enumerate() {
        let profile_cols = r.profile.map_or_else(String::new, |p| {
            format!(
                ", \"undo_ms\": {:.3}, \"splice_ms\": {:.3}, \"replace_ms\": {:.3}, \
                 \"slack_ms\": {:.3}, \"objective_ms\": {:.3}, \"memo_ms\": {:.3}, \
                 \"bake_ms\": {:.3}, \"priority_refresh_ms\": {:.3}, \
                 \"phase_wall_ms\": {:.3}, \"phase_timer_overhead_ms\": {:.3}, \
                 \"phase_coverage\": {:.3}",
                p.undo_ms,
                p.splice_ms,
                p.replace_ms,
                p.slack_ms,
                p.objective_ms,
                p.memo_ms,
                p.bake_ms,
                p.priority_refresh_ms,
                p.wall_ms,
                p.timer_overhead_ms,
                p.coverage,
            )
        });
        out.push_str(&format!(
            "    {{\"system_size\": {}, \"current\": {}, \"frozen_jobs\": {}, \"evals\": {}, \
             \"naive_evals_per_sec\": {:.1}, \"engine_evals_per_sec\": {:.1}, \
             \"delta_evals_per_sec\": {:.1}, \"speedup\": {:.2}, \"delta_speedup\": {:.2}, \
             \"delta_vs_engine\": {:.2}, \"memo_hits\": {}, \"raw_schedules\": {}, \
             \"delta_schedules\": {}, \"spliced_steps\": {}{}}}{}\n",
            r.size,
            r.current,
            r.frozen_jobs,
            r.evals,
            r.naive_evals_per_sec,
            r.engine_evals_per_sec,
            r.delta_evals_per_sec,
            r.speedup,
            r.delta_speedup,
            r.delta_vs_engine,
            r.memo_hits,
            r.raw_schedules,
            r.delta_schedules,
            r.spliced_steps,
            profile_cols,
            if i + 1 < bench.raw.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"strategies\": [\n");
    for (i, r) in bench.strategies.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"size\": {}, \"strategy\": \"{}\", \"naive_ms\": {:.3}, \
             \"engine_ms\": {:.3}, \"delta_ms\": {:.3}, \"speedup\": {:.2}, \
             \"delta_speedup\": {:.2}, \"delta_vs_engine\": {:.2}, \"par_ms\": {:.3}, \
             \"par_vs_delta\": {:.2}, \"evaluations\": {}}}{}\n",
            r.size,
            r.strategy,
            r.naive_ms,
            r.engine_ms,
            r.delta_ms,
            r.speedup,
            r.delta_speedup,
            r.delta_vs_engine,
            r.par_ms,
            r.par_vs_delta,
            r.evaluations,
            if i + 1 < bench.strategies.len() {
                ","
            } else {
                ""
            },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdes_synth::paper::dac2001_small;

    #[test]
    fn bench_runs_and_pipelines_agree() {
        // A tiny run: the differential assertions inside run_eval_bench
        // are the point; sizes and eval counts stay minimal.
        let mut preset = dac2001_small();
        preset.current_sizes = vec![10];
        preset.existing_processes = 40; // raw rows sweep 10 / 20 / 40
        let bench = run_eval_bench(
            &preset,
            24,
            &MhConfig {
                max_iterations: 2,
                ..MhConfig::default()
            },
            &SaConfig {
                max_evaluations: 30,
                ..SaConfig::quick()
            },
            2,
            true,
        );
        assert_eq!(bench.raw.len(), 3);
        assert_eq!(bench.strategies.len(), 3);
        let r = bench.raw.last().unwrap();
        assert!(r.memo_hits > 0, "revisits must hit the memo");
        assert!(r.raw_schedules < r.evals, "memo must save raw schedules");
        assert!(
            r.delta_schedules > 0,
            "the single-move stream must engage the delta path"
        );
        assert!(r.spliced_steps > 0, "delta runs must splice prefixes");
        let profile = r.profile.expect("profiling was requested");
        assert!(profile.wall_ms > 0.0);
        assert!(
            profile.splice_ms + profile.replace_ms > 0.0,
            "the profiled pass must record scheduling phases"
        );
        let json = render_json(&bench, "test");
        assert!(json.contains("\"bench\": \"eval_engine\""));
        assert!(json.contains("\"delta_evals_per_sec\""));
        assert!(json.contains("\"delta_ms\""));
        assert!(json.contains("\"par_ms\""));
        assert!(json.contains("\"search_threads\": 2"));
        for col in [
            "\"undo_ms\"",
            "\"splice_ms\"",
            "\"replace_ms\"",
            "\"slack_ms\"",
            "\"objective_ms\"",
            "\"phase_coverage\"",
        ] {
            assert!(json.contains(col), "missing profile column {col}");
        }
        for row in &bench.strategies {
            assert!(row.par_ms.is_finite() && row.par_ms > 0.0);
        }
    }

    #[test]
    fn trace_capture_produces_chrome_events() {
        let mut preset = dac2001_small();
        preset.current_sizes = vec![8];
        preset.existing_processes = 20;
        let json = capture_trace(&preset, 12);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""), "no complete events traced");
    }
}
