//! The evaluation-engine benchmark behind `figures bench-eval`.
//!
//! Measures `MappingContext::evaluate` throughput (evaluations per
//! second) on three pipelines — the naive one (`schedule()` +
//! `SlackProfile::from_table` + `objective::evaluate`, re-replaying the
//! frozen schedule every call), the full engine (`FrozenBase` +
//! `Scheduler` + memo, every raw schedule resetting from the base —
//! `with_full_evaluation()`), and the default **delta** path
//! (single-move neighbors splice the previous run and repack only the
//! invalidated C1 containers) — per system size and per strategy, on a
//! frozen base system built from a paper preset. The `figures` binary
//! renders the rows and persists them as `BENCH_eval.json` so the
//! speedups are tracked artifacts, and fails CI unless the delta path
//! beats the full engine on the largest frozen base.
//!
//! The paths are also cross-checked here: a sample of the evaluation
//! stream and every strategy outcome must agree across all pipelines
//! before a row is reported.

use crate::{build_base_system, current_application, BaseSystem};
use incdes_mapping::{
    initial_mapping, run_strategy, MappingContext, MhConfig, Move, SaConfig, SearchParallelism,
    Solution, Strategy,
};
use incdes_model::time::hyperperiod;
use incdes_model::{AppId, Application, PeId, ProcRef, Time};
use incdes_sched::{MsgRef, ScheduleTable};
use incdes_synth::paper::PaperPreset;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

/// One row of the raw-throughput comparison: the same deterministic
/// stream of design alternatives evaluated through both pipelines.
///
/// The row axis is the *system* size — the frozen processes already
/// committed — with a fixed mid-size current application, because that
/// is the paper's workload: the existing system grows over a product's
/// lifetime while each incremental addition stays modest, and the naive
/// pipeline re-replays that whole frozen history on every evaluation.
#[derive(Debug, Clone)]
pub struct EvalBenchRow {
    /// Frozen processes committed to the system before the current app.
    pub size: usize,
    /// Processes in the current application.
    pub current: usize,
    /// Frozen jobs replayed by the naive path on every evaluation.
    pub frozen_jobs: usize,
    /// Evaluations timed per pipeline.
    pub evals: usize,
    /// Naive pipeline throughput.
    pub naive_evals_per_sec: f64,
    /// Full-engine pipeline throughput (PR 4 behavior).
    pub engine_evals_per_sec: f64,
    /// Delta pipeline throughput (the default path).
    pub delta_evals_per_sec: f64,
    /// `engine / naive`.
    pub speedup: f64,
    /// `delta / naive`.
    pub delta_speedup: f64,
    /// `delta / engine` — the multiplier this PR is about.
    pub delta_vs_engine: f64,
    /// Engine evaluations answered from the solution memo.
    pub memo_hits: usize,
    /// Raw schedules the engine actually executed.
    pub raw_schedules: usize,
    /// Raw schedules that took the delta path (delta context).
    pub delta_schedules: usize,
    /// Placement steps spliced verbatim from run records.
    pub spliced_steps: usize,
}

/// One row of the per-strategy comparison: a full `run_strategy` on a
/// naive context versus an engine context.
#[derive(Debug, Clone)]
pub struct StrategyBenchRow {
    /// Processes in the current application.
    pub size: usize,
    /// Strategy display name (`AH`, `MH`, `SA`).
    pub strategy: &'static str,
    /// Wall-clock of the naive-context run, in milliseconds.
    pub naive_ms: f64,
    /// Wall-clock of the full-engine-context run, in milliseconds.
    pub engine_ms: f64,
    /// Wall-clock of the delta-context (default) run, in milliseconds.
    pub delta_ms: f64,
    /// `naive_ms / engine_ms`.
    pub speedup: f64,
    /// `naive_ms / delta_ms`.
    pub delta_speedup: f64,
    /// `engine_ms / delta_ms` — ≥ 1 when the delta path wins the
    /// strategy at wall-clock, the gate `figures bench-eval` enforces
    /// for MH and SA on the largest size.
    pub delta_vs_engine: f64,
    /// Wall-clock of the parallel-mode delta run (batched MH widening
    /// rounds over the benchmark's thread count; SA stays on one chain
    /// so its semantics — and this comparison — stay exact).
    pub par_ms: f64,
    /// `delta_ms / par_ms` — > 1 when fanning candidate evaluation out
    /// over threads beats the sequential delta path. On a single
    /// hardware thread this hovers just below 1 (scoped-thread
    /// overhead), which is why the `figures bench-eval` gate only
    /// applies when the hardware covers the requested thread count.
    pub par_vs_delta: f64,
    /// Evaluations the strategy spent (identical on every path).
    pub evaluations: usize,
}

/// The full benchmark result.
#[derive(Debug, Clone)]
pub struct EvalBench {
    /// Raw-throughput rows, one per current-application size.
    pub raw: Vec<EvalBenchRow>,
    /// Per-strategy rows (AH, MH, SA at every size).
    pub strategies: Vec<StrategyBenchRow>,
    /// Thread count of the parallel-mode strategy runs.
    pub threads: usize,
}

/// Ingredients of one benchmark scenario.
struct Scenario {
    base: BaseSystem,
    app: Application,
    frozen: ScheduleTable,
    horizon: Time,
    id: AppId,
}

impl Scenario {
    fn build(preset: &PaperPreset, size: usize, seed: u64) -> Scenario {
        let base = build_base_system(preset, seed);
        let app = current_application(preset, size, seed);
        let mut periods = vec![base.system.horizon()];
        periods.extend(app.graphs.iter().map(|g| g.period));
        let horizon = hyperperiod(periods).expect("periods are harmonic and small");
        let frozen = base
            .system
            .table()
            .replicate_to(base.system.arch(), horizon)
            .expect("horizon is a multiple of the committed horizon");
        let id = AppId(base.system.app_count() as u32);
        Scenario {
            base,
            app,
            frozen,
            horizon,
            id,
        }
    }

    fn context(&self) -> MappingContext<'_> {
        MappingContext::new(
            self.base.system.arch(),
            self.id,
            &self.app,
            Some(&self.frozen),
            self.horizon,
            &self.base.future,
            &self.base.weights,
        )
    }
}

/// A deterministic SA-like stream of design alternatives: a random walk
/// of remap/slack moves from the initial mapping, with roughly a quarter
/// of the entries revisiting an earlier state (the workload pattern the
/// memo exists for).
fn solution_stream(scenario: &Scenario, count: usize) -> Vec<Solution> {
    let scratch = scenario.context();
    let initial = initial_mapping(&scratch).expect("bench scenario is feasible");
    let mut rng = ChaCha8Rng::seed_from_u64(0xBE_EC);
    let procs: Vec<(ProcRef, Vec<PeId>)> = scenario
        .app
        .processes()
        .map(|(r, p)| {
            let pes: Vec<PeId> = p
                .wcets
                .iter()
                .map(|(pe, _)| pe)
                .filter(|pe| pe.index() < scenario.base.system.arch().pe_count())
                .collect();
            (r, pes)
        })
        .collect();
    let msgs: Vec<MsgRef> = scenario
        .app
        .graphs
        .iter()
        .enumerate()
        .flat_map(|(gi, g)| g.dag().edge_ids().map(move |e| MsgRef::new(gi, e)))
        .collect();

    let mut stream = vec![initial.clone()];
    let mut current = initial;
    while stream.len() < count {
        if stream.len() > 4 && rng.gen_range(0u32..100) < 25 {
            // Revisit an earlier state.
            let back = rng.gen_range(0..stream.len());
            stream.push(stream[back].clone());
            continue;
        }
        let mv = loop {
            let dice = rng.gen_range(0u32..100);
            if dice < 60 {
                let (pr, pes) = &procs[rng.gen_range(0..procs.len())];
                let candidates: Vec<PeId> = pes
                    .iter()
                    .copied()
                    .filter(|&pe| current.mapping.pe_of(*pr) != Some(pe))
                    .collect();
                if let Some(&to) = candidates.choose(&mut rng) {
                    break Move::Remap { proc_ref: *pr, to };
                }
            } else if dice < 85 {
                let (pr, _) = &procs[rng.gen_range(0..procs.len())];
                let h = current.hints.proc_gap(*pr);
                break Move::ProcSlack {
                    proc_ref: *pr,
                    gap: if h > 0 && rng.gen_bool(0.5) {
                        h - 1
                    } else {
                        h + 1
                    },
                };
            } else if !msgs.is_empty() {
                let mr = msgs[rng.gen_range(0..msgs.len())];
                let h = current.hints.msg_slot(mr);
                break Move::MsgSlack {
                    msg: mr,
                    slot: if h > 0 && rng.gen_bool(0.5) {
                        h - 1
                    } else {
                        h + 1
                    },
                };
            }
        };
        current.apply(&mv);
        stream.push(current.clone());
    }
    stream
}

/// Runs the benchmark: raw-throughput rows for every size of the preset
/// plus per-strategy rows, all on `preset.seeds[0]`.
///
/// # Panics
///
/// Panics if the two pipelines ever disagree on a result — the speedup
/// of a wrong answer is not worth reporting.
pub fn run_eval_bench(
    preset: &PaperPreset,
    evals_per_size: usize,
    mh_cfg: &MhConfig,
    sa_cfg: &SaConfig,
    threads: usize,
) -> EvalBench {
    // One chain and a fixed exchange period keep the parallel mode
    // semantically identical to the sequential delta path (same
    // solution, cost, evaluation count), so the wall-clock comparison
    // below measures the batching alone.
    let par = SearchParallelism::Parallel {
        threads: threads.max(1),
        sa_chains: 1,
        sa_exchange_period: 64,
    };
    let seed = preset.seeds[0];
    let mut raw = Vec::new();
    let mut strategies = Vec::new();

    // Raw throughput: system-size sweep (a quarter, half and all of the
    // preset's existing system — the preset's own base is the largest
    // that is guaranteed to fit) around a fixed mid-size current app.
    let current = preset.current_sizes[preset.current_sizes.len() / 2];
    let system_sizes = [
        preset.existing_processes / 4,
        preset.existing_processes / 2,
        preset.existing_processes,
    ];
    for system_size in system_sizes {
        let mut sized = preset.clone();
        sized.existing_processes = system_size;
        let scenario = Scenario::build(&sized, current, seed);
        let stream = solution_stream(&scenario, evals_per_size);

        // Differential check on a sample before anything is timed.
        {
            let naive = scenario.context().with_naive_evaluation();
            let engine = scenario.context().with_full_evaluation();
            let delta = scenario.context();
            for sol in stream.iter().take(16) {
                match (
                    naive.evaluate(sol),
                    engine.evaluate(sol),
                    delta.evaluate(sol),
                ) {
                    (Ok(a), Ok(b), Ok(c)) => {
                        assert_eq!(a.table, b.table, "engine/naive table mismatch");
                        assert_eq!(a.slack, b.slack, "engine/naive slack mismatch");
                        assert_eq!(a.cost, b.cost, "engine/naive cost mismatch");
                        assert_eq!(a.table, c.table, "delta/naive table mismatch");
                        assert_eq!(a.slack, c.slack, "delta/naive slack mismatch");
                        assert_eq!(a.cost, c.cost, "delta/naive cost mismatch");
                    }
                    (Err(a), Err(b), Err(c)) => {
                        assert_eq!(a, b, "engine/naive error mismatch");
                        assert_eq!(a, c, "delta/naive error mismatch");
                    }
                    (a, b, c) => {
                        panic!("pipeline feasibility mismatch: {a:?} vs {b:?} vs {c:?}")
                    }
                }
            }
        }

        // Each repetition uses a *fresh* context (a cold memo — the
        // revisit hits inside one pass are the workload, carrying a warm
        // memo across passes would not be); the minimum over repetitions
        // discards scheduler-noise outliers, as criterion would.
        const REPS: usize = 3;
        let time_stream = |ctx: &MappingContext<'_>| -> f64 {
            let t = Instant::now();
            for sol in &stream {
                let _ = ctx.evaluate(sol);
            }
            t.elapsed().as_secs_f64()
        };
        // Untimed warmup pass per pipeline (page cache, allocator).
        time_stream(&scenario.context().with_naive_evaluation());
        time_stream(&scenario.context().with_full_evaluation());
        time_stream(&scenario.context());

        let mut naive_secs = f64::INFINITY;
        let mut engine_secs = f64::INFINITY;
        let mut delta_secs = f64::INFINITY;
        let mut memo_hits = 0;
        let mut raw_schedules = 0;
        let mut delta_schedules = 0;
        let mut spliced_steps = 0;
        for _ in 0..REPS {
            naive_secs = naive_secs.min(time_stream(&scenario.context().with_naive_evaluation()));
            engine_secs = engine_secs.min(time_stream(&scenario.context().with_full_evaluation()));
            let delta_ctx = scenario.context();
            delta_secs = delta_secs.min(time_stream(&delta_ctx));
            memo_hits = delta_ctx.memo_hit_count();
            raw_schedules = delta_ctx.raw_schedule_count();
            delta_schedules = delta_ctx.delta_schedule_count();
            spliced_steps = delta_ctx.spliced_step_count();
        }

        raw.push(EvalBenchRow {
            size: system_size,
            current,
            frozen_jobs: scenario.frozen.jobs().len(),
            evals: stream.len(),
            naive_evals_per_sec: stream.len() as f64 / naive_secs.max(1e-9),
            engine_evals_per_sec: stream.len() as f64 / engine_secs.max(1e-9),
            delta_evals_per_sec: stream.len() as f64 / delta_secs.max(1e-9),
            speedup: naive_secs / engine_secs.max(1e-9),
            delta_speedup: naive_secs / delta_secs.max(1e-9),
            delta_vs_engine: engine_secs / delta_secs.max(1e-9),
            memo_hits,
            raw_schedules,
            delta_schedules,
            spliced_steps,
        });
    }

    // Full strategy runs: current-application sweep on the standard
    // base. Strategy wall-clocks are single runs of milliseconds, far
    // noisier than the amortized raw streams — each tier takes the
    // minimum over repetitions on a fresh (cold-memo) context, like the
    // raw rows, so the strategy-level gate is not at the mercy of one
    // scheduler hiccup.
    const STRAT_REPS: usize = 5;
    for &size in &preset.current_sizes {
        let scenario = Scenario::build(preset, size, seed);
        for strategy in [
            Strategy::AdHoc,
            Strategy::MappingHeuristic(*mh_cfg),
            Strategy::SimulatedAnnealing(*sa_cfg),
        ] {
            let mut naive_ms = f64::INFINITY;
            let mut engine_ms = f64::INFINITY;
            let mut delta_ms = f64::INFINITY;
            let mut par_ms = f64::INFINITY;
            let mut naive_out = None;
            let mut engine_out = None;
            let mut delta_out = None;
            let mut par_out = None;
            for _ in 0..STRAT_REPS {
                let naive_ctx = scenario.context().with_naive_evaluation();
                let t0 = Instant::now();
                naive_out = Some(run_strategy(&naive_ctx, &strategy));
                naive_ms = naive_ms.min(t0.elapsed().as_secs_f64() * 1e3);

                let engine_ctx = scenario.context().with_full_evaluation();
                let t1 = Instant::now();
                engine_out = Some(run_strategy(&engine_ctx, &strategy));
                engine_ms = engine_ms.min(t1.elapsed().as_secs_f64() * 1e3);

                let delta_ctx = scenario.context();
                let t2 = Instant::now();
                delta_out = Some(run_strategy(&delta_ctx, &strategy));
                delta_ms = delta_ms.min(t2.elapsed().as_secs_f64() * 1e3);

                let par_ctx = scenario.context().with_parallelism(par);
                let t3 = Instant::now();
                par_out = Some(run_strategy(&par_ctx, &strategy));
                par_ms = par_ms.min(t3.elapsed().as_secs_f64() * 1e3);
            }
            let (naive_out, engine_out, delta_out, par_out) = (
                naive_out.expect("at least one rep"),
                engine_out.expect("at least one rep"),
                delta_out.expect("at least one rep"),
                par_out.expect("at least one rep"),
            );

            let evaluations = match (&naive_out, &engine_out, &delta_out) {
                (Ok(a), Ok(b), Ok(c)) => {
                    assert_eq!(
                        a.evaluation.cost,
                        b.evaluation.cost,
                        "strategy {} cost diverged between pipelines",
                        strategy.name()
                    );
                    assert_eq!(
                        a.evaluation.cost,
                        c.evaluation.cost,
                        "strategy {} cost diverged on the delta path",
                        strategy.name()
                    );
                    assert_eq!(a.solution, c.solution);
                    assert_eq!(a.stats.evaluations, b.stats.evaluations);
                    assert_eq!(a.stats.evaluations, c.stats.evaluations);
                    let p = par_out
                        .as_ref()
                        .expect("parallel mode agrees on feasibility");
                    assert_eq!(
                        a.evaluation.cost,
                        p.evaluation.cost,
                        "strategy {} cost diverged on the parallel path",
                        strategy.name()
                    );
                    assert_eq!(a.solution, p.solution);
                    assert_eq!(a.stats.evaluations, p.stats.evaluations);
                    c.stats.evaluations
                }
                (Err(_), Err(_), Err(_)) => {
                    assert!(par_out.is_err(), "parallel mode diverged on feasibility");
                    0
                }
                _ => panic!(
                    "strategy {} feasibility diverged between pipelines",
                    strategy.name()
                ),
            };
            strategies.push(StrategyBenchRow {
                size,
                strategy: strategy.name(),
                naive_ms,
                engine_ms,
                delta_ms,
                speedup: naive_ms / engine_ms.max(1e-9),
                delta_speedup: naive_ms / delta_ms.max(1e-9),
                delta_vs_engine: engine_ms / delta_ms.max(1e-9),
                par_ms,
                par_vs_delta: delta_ms / par_ms.max(1e-9),
                evaluations,
            });
        }
    }
    EvalBench {
        raw,
        strategies,
        threads,
    }
}

/// Renders the benchmark as the `BENCH_eval.json` artifact.
pub fn render_json(bench: &EvalBench, preset_name: &str) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"eval_engine\",\n");
    out.push_str(&format!("  \"preset\": \"{preset_name}\",\n"));
    out.push_str(&format!("  \"search_threads\": {},\n", bench.threads));
    out.push_str("  \"raw\": [\n");
    for (i, r) in bench.raw.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"system_size\": {}, \"current\": {}, \"frozen_jobs\": {}, \"evals\": {}, \
             \"naive_evals_per_sec\": {:.1}, \"engine_evals_per_sec\": {:.1}, \
             \"delta_evals_per_sec\": {:.1}, \"speedup\": {:.2}, \"delta_speedup\": {:.2}, \
             \"delta_vs_engine\": {:.2}, \"memo_hits\": {}, \"raw_schedules\": {}, \
             \"delta_schedules\": {}, \"spliced_steps\": {}}}{}\n",
            r.size,
            r.current,
            r.frozen_jobs,
            r.evals,
            r.naive_evals_per_sec,
            r.engine_evals_per_sec,
            r.delta_evals_per_sec,
            r.speedup,
            r.delta_speedup,
            r.delta_vs_engine,
            r.memo_hits,
            r.raw_schedules,
            r.delta_schedules,
            r.spliced_steps,
            if i + 1 < bench.raw.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"strategies\": [\n");
    for (i, r) in bench.strategies.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"size\": {}, \"strategy\": \"{}\", \"naive_ms\": {:.3}, \
             \"engine_ms\": {:.3}, \"delta_ms\": {:.3}, \"speedup\": {:.2}, \
             \"delta_speedup\": {:.2}, \"delta_vs_engine\": {:.2}, \"par_ms\": {:.3}, \
             \"par_vs_delta\": {:.2}, \"evaluations\": {}}}{}\n",
            r.size,
            r.strategy,
            r.naive_ms,
            r.engine_ms,
            r.delta_ms,
            r.speedup,
            r.delta_speedup,
            r.delta_vs_engine,
            r.par_ms,
            r.par_vs_delta,
            r.evaluations,
            if i + 1 < bench.strategies.len() {
                ","
            } else {
                ""
            },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdes_synth::paper::dac2001_small;

    #[test]
    fn bench_runs_and_pipelines_agree() {
        // A tiny run: the differential assertions inside run_eval_bench
        // are the point; sizes and eval counts stay minimal.
        let mut preset = dac2001_small();
        preset.current_sizes = vec![10];
        preset.existing_processes = 40; // raw rows sweep 10 / 20 / 40
        let bench = run_eval_bench(
            &preset,
            24,
            &MhConfig {
                max_iterations: 2,
                ..MhConfig::default()
            },
            &SaConfig {
                max_evaluations: 30,
                ..SaConfig::quick()
            },
            2,
        );
        assert_eq!(bench.raw.len(), 3);
        assert_eq!(bench.strategies.len(), 3);
        let r = bench.raw.last().unwrap();
        assert!(r.memo_hits > 0, "revisits must hit the memo");
        assert!(r.raw_schedules < r.evals, "memo must save raw schedules");
        assert!(
            r.delta_schedules > 0,
            "the single-move stream must engage the delta path"
        );
        assert!(r.spliced_steps > 0, "delta runs must splice prefixes");
        let json = render_json(&bench, "test");
        assert!(json.contains("\"bench\": \"eval_engine\""));
        assert!(json.contains("\"delta_evals_per_sec\""));
        assert!(json.contains("\"delta_ms\""));
        assert!(json.contains("\"par_ms\""));
        assert!(json.contains("\"search_threads\": 2"));
        for row in &bench.strategies {
            assert!(row.par_ms.is_finite() && row.par_ms > 0.0);
        }
    }
}
