//! Experiment drivers for the DAC 2001 reproduction.
//!
//! Each public function regenerates the data behind one figure of the
//! paper's evaluation (slides 15–17):
//!
//! * [`run_quality`] — figure 1: average % deviation of the objective `C`
//!   from the near-optimal (SA) value, for AH and MH, versus the size of
//!   the current application;
//! * [`run_runtime`] — figure 2: average strategy execution time versus
//!   size (measured on the same instances as figure 1);
//! * [`run_future`] — figure 3: percentage of future applications that can
//!   still be mapped after the current application was committed with AH
//!   versus MH;
//! * [`run_fit_ablation`] / [`run_mh_ablation`] — the ablations called out
//!   in `DESIGN.md` (bin-packing policy; MH candidate filtering).
//!
//! The drivers are deterministic given the preset's seeds; the `figures`
//! binary prints the rows, and the criterion benches wrap the same
//! functions at reduced scale.

#![forbid(unsafe_code)]

use incdes_core::System;
use incdes_mapping::{run_strategy, MapError, MappingContext, MhConfig, SaConfig, Strategy};
use incdes_metrics::{FitPolicy, Weights};
use incdes_model::time::hyperperiod;
use incdes_model::{AppId, Application, Architecture, FutureProfile, Time};
use incdes_sched::ScheduleTable;
use incdes_synth::paper::PaperPreset;
use incdes_synth::{future_profile_for, generate_application, generate_architecture};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

/// How demanding the future-application family is relative to the
/// generator's natural scale. Values above 1 make the objective strictly
/// positive on loaded systems so percentage deviations are well defined.
pub const DEMAND_FACTOR: f64 = 4.0;

/// One row of figure 1 + 2 (they share instances).
#[derive(Debug, Clone)]
pub struct QualityRow {
    /// Processes in the current application.
    pub size: usize,
    /// Average % deviation of AH's cost from SA's.
    pub ah_deviation: f64,
    /// Average % deviation of MH's cost from SA's.
    pub mh_deviation: f64,
    /// Average absolute costs (diagnostics).
    pub ah_cost: f64,
    /// Average MH cost.
    pub mh_cost: f64,
    /// Average SA cost.
    pub sa_cost: f64,
    /// Average wall-clock time of AH.
    pub ah_time: Duration,
    /// Average wall-clock time of MH.
    pub mh_time: Duration,
    /// Average wall-clock time of SA.
    pub sa_time: Duration,
    /// Instances that were feasible for all three strategies.
    pub instances: usize,
}

/// One row of figure 3.
#[derive(Debug, Clone)]
pub struct FutureRow {
    /// Processes in the current application.
    pub size: usize,
    /// % of future applications mappable after an AH commit.
    pub ah_mapped_percent: f64,
    /// % of future applications mappable after an MH commit.
    pub mh_mapped_percent: f64,
    /// Future applications probed per strategy.
    pub probes: usize,
}

/// The frozen base system: architecture plus the existing applications'
/// schedule, built by committing them one at a time (AH keeps it fast and
/// identical across strategies).
pub struct BaseSystem {
    /// The session holding the existing applications.
    pub system: System,
    /// The future profile the experiments optimize for.
    pub future: FutureProfile,
    /// Objective weights.
    pub weights: Weights,
}

/// Builds the base system of a preset for one seed.
///
/// # Panics
///
/// Panics if the preset cannot generate or commit its own existing
/// applications — presets are validated by tests, so this indicates a
/// broken preset.
pub fn build_base_system(preset: &PaperPreset, seed: u64) -> BaseSystem {
    let arch = generate_architecture(&preset.cfg).expect("preset architecture is valid");
    let future = scaled_future(preset);
    let weights = Weights::default();
    let mut system = System::new(arch);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut remaining = preset.existing_processes;
    let mut i = 0usize;
    while remaining > 0 {
        let n = preset.existing_app_size.min(remaining);
        let app = generate_application(&preset.cfg, &format!("existing{i}"), n, &mut rng)
            .expect("preset generates valid applications");
        system
            .add_application(app, &future, &weights, &Strategy::AdHoc)
            .expect("preset existing applications must fit");
        remaining -= n;
        i += 1;
    }
    BaseSystem {
        system,
        future,
        weights,
    }
}

/// The experiment's future profile: the preset's natural profile with
/// `t_need`/`b_need` scaled by [`DEMAND_FACTOR`].
pub fn scaled_future(preset: &PaperPreset) -> FutureProfile {
    let mut f = future_profile_for(&preset.cfg, preset.future_processes);
    f.t_need = Time::new((f.t_need.as_f64() * DEMAND_FACTOR) as u64);
    f.b_need = Time::new((f.b_need.as_f64() * DEMAND_FACTOR) as u64);
    f
}

/// The current application of one `(size, seed)` instance.
pub fn current_application(preset: &PaperPreset, size: usize, seed: u64) -> Application {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xC0FFEE);
    generate_application(&preset.cfg, "current", size, &mut rng)
        .expect("preset generates valid applications")
}

/// A future application drawn from the family (for figure 3's probes).
pub fn future_application(preset: &PaperPreset, seed: u64, index: u64) -> Application {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (0xF0_07 + index * 7919));
    generate_application(
        &preset.future_cfg(),
        "future",
        preset.future_processes,
        &mut rng,
    )
    .expect("preset generates valid applications")
}

/// Prepares the mapping context ingredients for a current application on
/// a base system: `(frozen table, horizon)`.
fn frozen_for(base: &BaseSystem, app: &Application) -> (ScheduleTable, Time) {
    let mut periods = vec![base.system.horizon()];
    periods.extend(app.graphs.iter().map(|g| g.period));
    let horizon = hyperperiod(periods).expect("periods are harmonic and small");
    let frozen = base
        .system
        .table()
        .replicate_to(base.system.arch(), horizon)
        .expect("horizon is a multiple of the committed horizon");
    (frozen, horizon)
}

/// Strategy costs/timings of one instance.
struct InstanceResult {
    ah: (f64, Duration),
    mh: (f64, Duration),
    sa: (f64, Duration),
}

fn run_instance(
    base: &BaseSystem,
    arch: &Architecture,
    app: &Application,
    mh_cfg: &MhConfig,
    sa_cfg: &SaConfig,
) -> Result<InstanceResult, MapError> {
    let (frozen, horizon) = frozen_for(base, app);
    let id = AppId(base.system.app_count() as u32);
    let ctx = MappingContext::new(
        arch,
        id,
        app,
        Some(&frozen),
        horizon,
        &base.future,
        &base.weights,
    );
    let ah = run_strategy(&ctx, &Strategy::AdHoc)?;
    let mh = run_strategy(&ctx, &Strategy::MappingHeuristic(*mh_cfg))?;
    let sa = run_strategy(&ctx, &Strategy::SimulatedAnnealing(*sa_cfg))?;
    Ok(InstanceResult {
        ah: (ah.evaluation.cost.total, ah.stats.elapsed),
        mh: (mh.evaluation.cost.total, mh.stats.elapsed),
        sa: (sa.evaluation.cost.total, sa.stats.elapsed),
    })
}

/// Percentage deviation of `cost` from the reference `sa`.
///
/// When the reference is (near) zero the deviation is measured against a
/// floor of 1 cost unit — documented in `EXPERIMENTS.md`.
pub fn deviation_percent(cost: f64, sa: f64) -> f64 {
    100.0 * (cost - sa) / sa.max(1.0)
}

/// Figures 1 and 2: quality and runtime of AH/MH/SA per current size.
pub fn run_quality(preset: &PaperPreset, mh_cfg: &MhConfig, sa_cfg: &SaConfig) -> Vec<QualityRow> {
    let mut rows = Vec::new();
    for &size in &preset.current_sizes {
        let mut dev_ah = 0.0;
        let mut dev_mh = 0.0;
        let mut sums = [0.0f64; 3];
        let mut times = [Duration::ZERO; 3];
        let mut n = 0usize;
        for &seed in &preset.seeds {
            let base = build_base_system(preset, seed);
            let arch = base.system.arch().clone();
            let app = current_application(preset, size, seed);
            let r = match run_instance(&base, &arch, &app, mh_cfg, sa_cfg) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("# skipped size={size} seed={seed}: {e}");
                    continue;
                }
            };
            dev_ah += deviation_percent(r.ah.0, r.sa.0);
            dev_mh += deviation_percent(r.mh.0, r.sa.0);
            sums[0] += r.ah.0;
            sums[1] += r.mh.0;
            sums[2] += r.sa.0;
            times[0] += r.ah.1;
            times[1] += r.mh.1;
            times[2] += r.sa.1;
            n += 1;
        }
        let n_f = n.max(1) as f64;
        rows.push(QualityRow {
            size,
            ah_deviation: dev_ah / n_f,
            mh_deviation: dev_mh / n_f,
            ah_cost: sums[0] / n_f,
            mh_cost: sums[1] / n_f,
            sa_cost: sums[2] / n_f,
            ah_time: times[0] / n.max(1) as u32,
            mh_time: times[1] / n.max(1) as u32,
            sa_time: times[2] / n.max(1) as u32,
            instances: n,
        });
    }
    rows
}

/// Figure 2 is the runtime view of the figure-1 instances.
pub fn run_runtime(preset: &PaperPreset, mh_cfg: &MhConfig, sa_cfg: &SaConfig) -> Vec<QualityRow> {
    run_quality(preset, mh_cfg, sa_cfg)
}

/// Figure 3: future-application mappability after AH vs MH commits.
///
/// `futures_per_seed` future applications are probed per instance.
pub fn run_future(
    preset: &PaperPreset,
    mh_cfg: &MhConfig,
    futures_per_seed: u64,
) -> Vec<FutureRow> {
    let mut rows = Vec::new();
    for &size in &preset.current_sizes {
        let mut mapped = [0usize; 2];
        let mut probes = 0usize;
        for &seed in &preset.seeds {
            let app = current_application(preset, size, seed);
            for (si, strategy) in [Strategy::AdHoc, Strategy::MappingHeuristic(*mh_cfg)]
                .iter()
                .enumerate()
            {
                let mut base = build_base_system(preset, seed);
                if base
                    .system
                    .add_application(app.clone(), &base.future, &base.weights, strategy)
                    .is_err()
                {
                    continue; // current app itself infeasible: counts as 0 mapped
                }
                for fi in 0..futures_per_seed {
                    let fut = future_application(preset, seed, fi);
                    let probe = base
                        .system
                        .probe_application(&fut, &base.future, &base.weights, &Strategy::AdHoc)
                        .expect("probe inputs are valid");
                    if probe.feasible {
                        mapped[si] += 1;
                    }
                }
            }
            probes += futures_per_seed as usize;
        }
        rows.push(FutureRow {
            size,
            ah_mapped_percent: 100.0 * mapped[0] as f64 / probes.max(1) as f64,
            mh_mapped_percent: 100.0 * mapped[1] as f64 / probes.max(1) as f64,
            probes,
        });
    }
    rows
}

/// Ablation: C1 bin-packing policy (best/first/worst fit) on identical
/// *loaded* slack profiles (base system plus the largest current
/// application committed with AH). Returns
/// `(policy name, average C1P, average C1m)`.
pub fn run_fit_ablation(preset: &PaperPreset) -> Vec<(&'static str, f64, f64)> {
    let policies = [
        ("best-fit", FitPolicy::BestFit),
        ("first-fit", FitPolicy::FirstFit),
        ("worst-fit", FitPolicy::WorstFit),
    ];
    let size = *preset.current_sizes.last().expect("presets have sizes");
    // Collect the loaded slack profiles once; policies only change the
    // packing, not the schedule.
    let mut profiles = Vec::new();
    for &seed in &preset.seeds {
        let mut base = build_base_system(preset, seed);
        let app = current_application(preset, size, seed);
        let future = base.future.clone();
        let weights = base.weights;
        if base
            .system
            .add_application(app, &future, &weights, &Strategy::AdHoc)
            .is_err()
        {
            continue;
        }
        profiles.push((base.system.arch().clone(), base.system.slack(), future));
    }
    let mut out = Vec::new();
    for (name, policy) in policies {
        let mut c1p = 0.0;
        let mut c1m = 0.0;
        for (arch, slack, future) in &profiles {
            c1p += incdes_metrics::c1_processes(slack, future, policy);
            c1m += incdes_metrics::c1_messages(arch, slack, future, policy);
        }
        let n = profiles.len().max(1) as f64;
        out.push((name, c1p / n, c1m / n));
    }
    out
}

/// Ablation: MH candidate filtering (highest-potential subset) versus an
/// exhaustive neighborhood. Returns rows of
/// `(size, filtered cost, filtered evals, exhaustive cost, exhaustive evals)`.
pub fn run_mh_ablation(preset: &PaperPreset, size: usize) -> Vec<(u64, f64, usize, f64, usize)> {
    let filtered = MhConfig::default();
    let exhaustive = MhConfig {
        process_candidates: usize::MAX,
        message_candidates: usize::MAX,
        ..MhConfig::default()
    };
    let mut rows = Vec::new();
    for &seed in &preset.seeds {
        let base = build_base_system(preset, seed);
        let arch = base.system.arch().clone();
        let app = current_application(preset, size, seed);
        let (frozen, horizon) = frozen_for(&base, &app);
        let id = AppId(base.system.app_count() as u32);
        let ctx = MappingContext::new(
            &arch,
            id,
            &app,
            Some(&frozen),
            horizon,
            &base.future,
            &base.weights,
        );
        let Ok(a) = run_strategy(&ctx, &Strategy::MappingHeuristic(filtered)) else {
            continue;
        };
        let Ok(b) = run_strategy(&ctx, &Strategy::MappingHeuristic(exhaustive)) else {
            continue;
        };
        rows.push((
            seed,
            a.evaluation.cost.total,
            a.stats.evaluations,
            b.evaluation.cost.total,
            b.stats.evaluations,
        ));
    }
    rows
}
