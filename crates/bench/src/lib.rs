//! Experiment drivers for the DAC 2001 reproduction.
//!
//! Each public function regenerates the data behind one figure of the
//! paper's evaluation (slides 15–17):
//!
//! * [`run_quality`] — figure 1: average % deviation of the objective `C`
//!   from the near-optimal (SA) value, for AH and MH, versus the size of
//!   the current application;
//! * [`run_runtime`] — figure 2: average strategy execution time versus
//!   size (measured on the same instances as figure 1);
//! * [`run_future`] — figure 3: percentage of future applications that can
//!   still be mapped after the current application was committed with AH
//!   versus MH;
//! * [`run_fit_ablation`] / [`run_mh_ablation`] — the ablations called out
//!   in `DESIGN.md` (bin-packing policy; MH candidate filtering).
//!
//! The drivers are deterministic given the preset's seeds; the `figures`
//! binary prints the rows, and the criterion benches wrap the same
//! functions at reduced scale.
//!
//! [`eval_bench`] (driving `figures bench-eval`) measures the
//! incremental evaluation engine against the naive pipeline — raw
//! `MappingContext::evaluate` throughput per system size plus full
//! strategy runs — and emits the tracked `BENCH_eval.json` perf
//! artifact next to `bench-store`'s `BENCH_campaign.json`.
//!
//! Since the `incdes_explore` campaign subsystem landed, [`run_quality`]
//! and [`run_future`] are thin aggregations over a
//! [`incdes_explore::CampaignSpec`]: the preset's axes become the
//! campaign grid, the existing applications become `Add` script steps,
//! and the scenarios fan out over worker threads (deterministically —
//! the rows do not depend on the worker count).

#![forbid(unsafe_code)]

pub mod eval_bench;
pub mod tables;

pub use eval_bench::{
    capture_trace, run_eval_bench, EvalBench, EvalBenchRow, PhaseBreakdown, StrategyBenchRow,
};

use incdes_core::System;
use incdes_explore::{
    run_campaign, BaseSpec, CampaignSpec, CompletedScenario, Count, ScriptStep, StepAction,
};
use incdes_mapping::{
    run_strategy, MappingContext, MhConfig, SaConfig, SearchParallelism, Strategy,
};
use incdes_metrics::{FitPolicy, Weights};
use incdes_model::time::hyperperiod;
use incdes_model::{AppId, Application, FutureProfile, Time};
use incdes_sched::ScheduleTable;
use incdes_synth::paper::PaperPreset;
use incdes_synth::{future_profile_for, generate_application, generate_architecture};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

/// How demanding the future-application family is relative to the
/// generator's natural scale. Values above 1 make the objective strictly
/// positive on loaded systems so percentage deviations are well defined.
pub const DEMAND_FACTOR: f64 = 4.0;

/// One row of figure 1 + 2 (they share instances).
#[derive(Debug, Clone)]
pub struct QualityRow {
    /// Processes in the current application.
    pub size: usize,
    /// Average % deviation of AH's cost from SA's.
    pub ah_deviation: f64,
    /// Average % deviation of MH's cost from SA's.
    pub mh_deviation: f64,
    /// Average absolute costs (diagnostics).
    pub ah_cost: f64,
    /// Average MH cost.
    pub mh_cost: f64,
    /// Average SA cost.
    pub sa_cost: f64,
    /// Average wall-clock time of AH.
    pub ah_time: Duration,
    /// Average wall-clock time of MH.
    pub mh_time: Duration,
    /// Average wall-clock time of SA.
    pub sa_time: Duration,
    /// Instances that were feasible for all three strategies.
    pub instances: usize,
}

/// One row of figure 3.
#[derive(Debug, Clone)]
pub struct FutureRow {
    /// Processes in the current application.
    pub size: usize,
    /// % of future applications mappable after an AH commit.
    pub ah_mapped_percent: f64,
    /// % of future applications mappable after an MH commit.
    pub mh_mapped_percent: f64,
    /// Future applications probed per strategy.
    pub probes: usize,
}

/// The frozen base system: architecture plus the existing applications'
/// schedule, built by committing them one at a time (AH keeps it fast and
/// identical across strategies).
pub struct BaseSystem {
    /// The session holding the existing applications.
    pub system: System,
    /// The future profile the experiments optimize for.
    pub future: FutureProfile,
    /// Objective weights.
    pub weights: Weights,
}

/// Builds the base system of a preset for one seed.
///
/// # Panics
///
/// Panics if the preset cannot generate or commit its own existing
/// applications — presets are validated by tests, so this indicates a
/// broken preset.
pub fn build_base_system(preset: &PaperPreset, seed: u64) -> BaseSystem {
    let arch = generate_architecture(&preset.cfg).expect("preset architecture is valid");
    let future = scaled_future(preset);
    let weights = Weights::default();
    let mut system = System::new(arch);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut remaining = preset.existing_processes;
    let mut i = 0usize;
    while remaining > 0 {
        let n = preset.existing_app_size.clamp(1, remaining);
        let app = generate_application(&preset.cfg, &format!("existing{i}"), n, &mut rng)
            .expect("preset generates valid applications");
        system
            .add_application(app, &future, &weights, &Strategy::AdHoc)
            .expect("preset existing applications must fit");
        remaining -= n;
        i += 1;
    }
    BaseSystem {
        system,
        future,
        weights,
    }
}

/// The experiment's future profile: the preset's natural profile with
/// `t_need`/`b_need` scaled by [`DEMAND_FACTOR`].
pub fn scaled_future(preset: &PaperPreset) -> FutureProfile {
    let mut f = future_profile_for(&preset.cfg, preset.future_processes);
    f.t_need = Time::new((f.t_need.as_f64() * DEMAND_FACTOR) as u64);
    f.b_need = Time::new((f.b_need.as_f64() * DEMAND_FACTOR) as u64);
    f
}

/// The current application of one `(size, seed)` instance.
pub fn current_application(preset: &PaperPreset, size: usize, seed: u64) -> Application {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xC0FFEE);
    generate_application(&preset.cfg, "current", size, &mut rng)
        .expect("preset generates valid applications")
}

/// A future application drawn from the family (for figure 3's probes).
pub fn future_application(preset: &PaperPreset, seed: u64, index: u64) -> Application {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (0xF0_07 + index * 7919));
    generate_application(
        &preset.future_cfg(),
        "future",
        preset.future_processes,
        &mut rng,
    )
    .expect("preset generates valid applications")
}

/// Prepares the mapping context ingredients for a current application on
/// a base system: `(frozen table, horizon)`.
fn frozen_for(base: &BaseSystem, app: &Application) -> (ScheduleTable, Time) {
    let mut periods = vec![base.system.horizon()];
    periods.extend(app.graphs.iter().map(|g| g.period));
    let horizon = hyperperiod(periods).expect("periods are harmonic and small");
    let frozen = base
        .system
        .table()
        .replicate_to(base.system.arch(), horizon)
        .expect("horizon is a multiple of the committed horizon");
    (frozen, horizon)
}

/// Worker threads for campaign fan-out (capped so laptop runs stay
/// polite). Cost rows never depend on this; wall-clock columns do
/// (CPU contention), which is why [`run_runtime`] pins one worker.
fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// `Add` steps committing the preset's existing applications with AH
/// (fast, and identical across the strategy axis).
fn existing_script(preset: &PaperPreset) -> Vec<ScriptStep> {
    let mut steps = Vec::new();
    let mut remaining = preset.existing_processes;
    while remaining > 0 {
        // clamp(1, ..) keeps a degenerate existing_app_size of 0 from
        // chunking forever.
        let n = preset.existing_app_size.clamp(1, remaining);
        steps.push(ScriptStep::Add {
            processes: Count::Fixed(n),
            strategy: Some(Strategy::AdHoc),
            future: false,
        });
        remaining -= n;
    }
    steps
}

/// The figure-1/2 sweep as a campaign: existing apps, then the current
/// application at every size, for AH/MH/SA at every seed.
pub fn quality_campaign_spec(
    preset: &PaperPreset,
    mh_cfg: &MhConfig,
    sa_cfg: &SaConfig,
) -> CampaignSpec {
    let mut script = existing_script(preset);
    script.push(ScriptStep::Add {
        processes: Count::Size,
        strategy: None,
        future: false,
    });
    CampaignSpec {
        name: "figures-quality".to_string(),
        base: BaseSpec::Config(preset.cfg.clone()),
        future_processes: preset.future_processes,
        demand_factor: DEMAND_FACTOR,
        sizes: preset.current_sizes.clone(),
        strategies: vec![
            Strategy::AdHoc,
            Strategy::MappingHeuristic(*mh_cfg),
            Strategy::SimulatedAnnealing(*sa_cfg),
        ],
        seeds: preset.seeds.clone(),
        weight_settings: Vec::new(),
        script,
        check_invariants: false,
        parallelism: SearchParallelism::default(),
    }
}

/// The figure-3 sweep as a campaign: like
/// [`quality_campaign_spec`] (AH and MH only), followed by
/// `futures_per_seed` probes of future-family applications.
pub fn future_campaign_spec(
    preset: &PaperPreset,
    mh_cfg: &MhConfig,
    futures_per_seed: u64,
) -> CampaignSpec {
    let mut spec = quality_campaign_spec(preset, mh_cfg, &SaConfig::default());
    spec.name = "figures-future".to_string();
    spec.strategies = vec![Strategy::AdHoc, Strategy::MappingHeuristic(*mh_cfg)];
    for _ in 0..futures_per_seed {
        spec.script.push(ScriptStep::Probe {
            processes: Count::Fixed(preset.future_processes),
            strategy: Some(Strategy::AdHoc),
            future: true,
        });
    }
    spec
}

/// The cost and wall-clock time of the scenario's current-application
/// commit (the `Count::Size` step), provided the whole build-up was
/// feasible.
fn current_commit(outcome: &CompletedScenario, current_step: usize) -> Option<(f64, Duration)> {
    let committed = outcome.steps[..=current_step]
        .iter()
        .all(|s| s.feasible && matches!(s.action, StepAction::Add));
    if !committed {
        return None;
    }
    let step = &outcome.steps[current_step];
    step.cost.map(|c| (c.total, step.elapsed))
}

/// Percentage deviation of `cost` from the reference `sa`.
///
/// When the reference is (near) zero the deviation is measured against a
/// floor of 1 cost unit — documented in `EXPERIMENTS.md`.
pub fn deviation_percent(cost: f64, sa: f64) -> f64 {
    100.0 * (cost - sa) / sa.max(1.0)
}

/// Figures 1 and 2: quality and runtime of AH/MH/SA per current size.
///
/// Runs the [`quality_campaign_spec`] campaign over worker threads and
/// aggregates: scenarios sharing a `(size, seed)` grid point were
/// generated from the same RNG stream, so the three strategies mapped
/// the *same* instance and their costs are directly comparable.
pub fn run_quality(preset: &PaperPreset, mh_cfg: &MhConfig, sa_cfg: &SaConfig) -> Vec<QualityRow> {
    run_quality_workers(preset, mh_cfg, sa_cfg, default_workers())
}

/// [`run_quality`] with an explicit worker count. The cost columns are
/// identical at every worker count (campaign determinism); the
/// wall-clock columns are only contention-free at `workers == 1`.
pub fn run_quality_workers(
    preset: &PaperPreset,
    mh_cfg: &MhConfig,
    sa_cfg: &SaConfig,
    workers: usize,
) -> Vec<QualityRow> {
    let spec = quality_campaign_spec(preset, mh_cfg, sa_cfg);
    let run = run_campaign(&spec, workers).expect("quality campaign spec is valid");
    let current_step = spec.script.len() - 1;
    let find = |size: usize, seed: u64, name: &str| {
        run.completed()
            .find(|o| o.key.size == size && o.key.seed == seed && o.key.strategy.name() == name)
            .and_then(|o| current_commit(o, current_step))
    };
    let mut rows = Vec::new();
    for &size in &preset.current_sizes {
        let mut dev_ah = 0.0;
        let mut dev_mh = 0.0;
        let mut sums = [0.0f64; 3];
        let mut times = [Duration::ZERO; 3];
        let mut n = 0usize;
        for &seed in &preset.seeds {
            let (Some(ah), Some(mh), Some(sa)) = (
                find(size, seed, "AH"),
                find(size, seed, "MH"),
                find(size, seed, "SA"),
            ) else {
                eprintln!("# skipped size={size} seed={seed}: infeasible for some strategy");
                continue;
            };
            dev_ah += deviation_percent(ah.0, sa.0);
            dev_mh += deviation_percent(mh.0, sa.0);
            sums[0] += ah.0;
            sums[1] += mh.0;
            sums[2] += sa.0;
            times[0] += ah.1;
            times[1] += mh.1;
            times[2] += sa.1;
            n += 1;
        }
        let n_f = n.max(1) as f64;
        rows.push(QualityRow {
            size,
            ah_deviation: dev_ah / n_f,
            mh_deviation: dev_mh / n_f,
            ah_cost: sums[0] / n_f,
            mh_cost: sums[1] / n_f,
            sa_cost: sums[2] / n_f,
            ah_time: times[0] / n.max(1) as u32,
            mh_time: times[1] / n.max(1) as u32,
            sa_time: times[2] / n.max(1) as u32,
            instances: n,
        });
    }
    rows
}

/// Figure 2 is the runtime view of the figure-1 instances, measured
/// single-threaded: the per-strategy wall-clock columns are the point
/// of the figure, so no other scenario may compete for the CPU while
/// they are taken. Cost columns match [`run_quality`] exactly.
pub fn run_runtime(preset: &PaperPreset, mh_cfg: &MhConfig, sa_cfg: &SaConfig) -> Vec<QualityRow> {
    run_quality_workers(preset, mh_cfg, sa_cfg, 1)
}

/// Figure 3: future-application mappability after AH vs MH commits.
///
/// `futures_per_seed` future applications are probed per instance, via
/// the [`future_campaign_spec`] campaign. The AH and MH scenarios of a
/// `(size, seed)` grid point share one RNG stream, so they probe the
/// *same* future applications; a scenario whose current application did
/// not fit counts all its probes as unmapped (as in the paper).
pub fn run_future(
    preset: &PaperPreset,
    mh_cfg: &MhConfig,
    futures_per_seed: u64,
) -> Vec<FutureRow> {
    let spec = future_campaign_spec(preset, mh_cfg, futures_per_seed);
    let run = run_campaign(&spec, default_workers()).expect("future campaign spec is valid");
    let current_step = spec.script.len() - 1 - futures_per_seed as usize;
    let mut rows = Vec::new();
    for &size in &preset.current_sizes {
        let mut mapped = [0usize; 2];
        let mut probes = 0usize;
        for &seed in &preset.seeds {
            probes += futures_per_seed as usize;
            for (si, name) in ["AH", "MH"].iter().enumerate() {
                let Some(outcome) = run.completed().find(|o| {
                    o.key.size == size && o.key.seed == seed && o.key.strategy.name() == *name
                }) else {
                    continue;
                };
                if current_commit(outcome, current_step).is_none() {
                    continue; // current app itself infeasible: counts as 0 mapped
                }
                mapped[si] += outcome.steps[current_step + 1..]
                    .iter()
                    .filter(|s| matches!(s.action, StepAction::Probe) && s.feasible)
                    .count();
            }
        }
        rows.push(FutureRow {
            size,
            ah_mapped_percent: 100.0 * mapped[0] as f64 / probes.max(1) as f64,
            mh_mapped_percent: 100.0 * mapped[1] as f64 / probes.max(1) as f64,
            probes,
        });
    }
    rows
}

/// Ablation: C1 bin-packing policy (best/first/worst fit) on identical
/// *loaded* slack profiles (base system plus the largest current
/// application committed with AH). Returns
/// `(policy name, average C1P, average C1m)`.
pub fn run_fit_ablation(preset: &PaperPreset) -> Vec<(&'static str, f64, f64)> {
    let policies = [
        ("best-fit", FitPolicy::BestFit),
        ("first-fit", FitPolicy::FirstFit),
        ("worst-fit", FitPolicy::WorstFit),
    ];
    let size = *preset.current_sizes.last().expect("presets have sizes");
    // Collect the loaded slack profiles once; policies only change the
    // packing, not the schedule.
    let mut profiles = Vec::new();
    for &seed in &preset.seeds {
        let mut base = build_base_system(preset, seed);
        let app = current_application(preset, size, seed);
        let future = base.future.clone();
        let weights = base.weights;
        if base
            .system
            .add_application(app, &future, &weights, &Strategy::AdHoc)
            .is_err()
        {
            continue;
        }
        profiles.push((base.system.arch().clone(), base.system.slack(), future));
    }
    let mut out = Vec::new();
    for (name, policy) in policies {
        let mut c1p = 0.0;
        let mut c1m = 0.0;
        for (arch, slack, future) in &profiles {
            c1p += incdes_metrics::c1_processes(slack, future, policy);
            c1m += incdes_metrics::c1_messages(arch, slack, future, policy);
        }
        let n = profiles.len().max(1) as f64;
        out.push((name, c1p / n, c1m / n));
    }
    out
}

/// Ablation: MH candidate filtering (highest-potential subset) versus an
/// exhaustive neighborhood. Returns rows of
/// `(size, filtered cost, filtered evals, exhaustive cost, exhaustive evals)`.
pub fn run_mh_ablation(preset: &PaperPreset, size: usize) -> Vec<(u64, f64, usize, f64, usize)> {
    let filtered = MhConfig::default();
    let exhaustive = MhConfig {
        process_candidates: usize::MAX,
        message_candidates: usize::MAX,
        ..MhConfig::default()
    };
    let mut rows = Vec::new();
    for &seed in &preset.seeds {
        let base = build_base_system(preset, seed);
        let arch = base.system.arch().clone();
        let app = current_application(preset, size, seed);
        let (frozen, horizon) = frozen_for(&base, &app);
        let id = AppId(base.system.app_count() as u32);
        let ctx = MappingContext::new(
            &arch,
            id,
            &app,
            Some(&frozen),
            horizon,
            &base.future,
            &base.weights,
        );
        let Ok(a) = run_strategy(&ctx, &Strategy::MappingHeuristic(filtered)) else {
            continue;
        };
        let Ok(b) = run_strategy(&ctx, &Strategy::MappingHeuristic(exhaustive)) else {
            continue;
        };
        rows.push((
            seed,
            a.evaluation.cost.total,
            a.stats.evaluations,
            b.evaluation.cost.total,
            b.stats.evaluations,
        ));
    }
    rows
}
