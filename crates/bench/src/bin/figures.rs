//! Regenerates the figures of Pop et al., DAC 2001.
//!
//! ```text
//! figures [f1|f2|f3|t1|ablate-fit|ablate-mh|all] [--small]
//! figures campaign [--spec FILE] [--workers N] [--shard I/N]
//!                  [--store [DIR]] [--no-cache] [--gc] [--out FILE]
//!                  [--stats-json FILE] [--profile-out FILE]
//!                  [--inject-faults PLAN.json] [--fault-seed S]
//! figures merge SHARD.json... [--out FILE]
//! figures tables REPORT.json [--csv FILE]
//! figures bench-store [--store DIR] [--out FILE]
//! figures bench-eval [--out FILE] [--evals N] [--full]
//!                    [--profile] [--trace FILE]
//!                    [--min-delta-evals-per-sec N] [--min-delta-speedup X]
//! ```
//!
//! `--small` switches to the scaled-down preset (seconds instead of
//! minutes). Output is plain text tables. The campaign subcommands
//! drive `incdes_explore`:
//!
//! * `campaign` runs a campaign spec (the small demo by default, or a
//!   JSON `CampaignSpec` via `--spec`) and prints its byte-stable JSON
//!   report to stdout. With `--store` the content-addressed persistent
//!   store under DIR (default `.campaign-store/`) serves unchanged
//!   scenarios from cache; `--no-cache` bypasses it; `--gc` prunes
//!   blobs not reachable from this spec; `--shard I/N` runs only one
//!   deterministic shard of the grid. Cache-hit/miss accounting always
//!   goes to **stderr** so sharded CI logs are auditable while stdout
//!   stays byte-stable. `--inject-faults PLAN.json` wraps the store's
//!   filesystem backend in a seeded fault injector (`--fault-seed`, for
//!   the fault-soak CI job): the report bytes must still equal the
//!   fault-free run's. Quarantined (panicked) scenarios are listed on
//!   stderr and turn the exit code to 3 — partial failure, never abort.
//! * `merge` joins shard reports back into the canonical report —
//!   byte-identical to an unsharded run.
//! * `tables` renders a (merged) report into the paper's result tables
//!   as aligned text + CSV (see `incdes_bench::tables`).
//! * `bench-store` times a cold vs. warm (fully cached) demo campaign
//!   and writes the wall-clock comparison as `BENCH_campaign.json`.
//! * `bench-eval` times `MappingContext::evaluate` through the naive
//!   pipeline vs. the incremental evaluation engine, per system size and
//!   per strategy, and writes `BENCH_eval.json`; it fails unless the
//!   engine's memo actually saved raw schedules.

use incdes_bench::{
    run_fit_ablation, run_future, run_mh_ablation, run_quality, run_runtime, scaled_future, tables,
    QualityRow,
};
use incdes_explore::{
    live_keys, merge_reports, run_campaign_store, CampaignReport, CampaignSpec, Shard,
    StoreOptions, StoredCampaign,
};
use incdes_mapping::{MhConfig, SaConfig};
use incdes_store::{FaultPlan, FaultyBackend, FsBackend, Store};
use incdes_synth::paper::{dac2001, dac2001_small, PaperPreset};
use std::sync::Arc;
use std::time::Instant;

/// Default on-disk location of the persistent campaign store.
const DEFAULT_STORE_DIR: &str = ".campaign-store";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("campaign") => return campaign_cmd(&args[1..]),
        Some("merge") => return merge_cmd(&args[1..]),
        Some("tables") => return tables_cmd(&args[1..]),
        Some("bench-store") => return bench_store_cmd(&args[1..]),
        Some("bench-eval") => return bench_eval_cmd(&args[1..]),
        _ => {}
    }
    let small = args.iter().any(|a| a == "--small");
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());

    let preset = if small { dac2001_small() } else { dac2001() };
    let (mh_cfg, sa_cfg) = configs(small);

    println!(
        "# incdes figures — preset: {} (existing {} processes, seeds {:?})",
        if small { "small" } else { "dac2001" },
        preset.existing_processes,
        preset.seeds,
    );
    let f = scaled_future(&preset);
    println!(
        "# future profile: Tmin={} tneed={} bneed={}\n",
        f.t_min, f.t_need, f.b_need
    );

    let t0 = Instant::now();
    match what.as_str() {
        "f1" => fig1(&preset, &mh_cfg, &sa_cfg),
        "f2" => fig2(&preset, &mh_cfg, &sa_cfg),
        "f3" => fig3(&preset, &mh_cfg),
        "t1" => table1(&preset),
        "ablate-fit" => ablate_fit(&preset),
        "ablate-mh" => ablate_mh(&preset),
        "all" => {
            print_fig1(&run_quality(&preset, &mh_cfg, &sa_cfg));
            fig2(&preset, &mh_cfg, &sa_cfg);
            fig3(&preset, &mh_cfg);
            table1(&preset);
            ablate_fit(&preset);
            ablate_mh(&preset);
        }
        other => {
            eprintln!(
                "unknown figure '{other}' (expected f1|f2|f3|t1|ablate-fit|ablate-mh|all \
                 or a subcommand: campaign|merge|tables|bench-store|bench-eval)"
            );
            std::process::exit(2);
        }
    }
    println!("\n# total wall-clock: {:.1?}", t0.elapsed());
}

fn die(msg: impl std::fmt::Display) -> ! {
    eprintln!("figures: {msg}");
    std::process::exit(2);
}

/// Consumes the value of a `--flag VALUE` pair at `args[i]`.
fn flag_value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> &'a str {
    *i += 1;
    args.get(*i)
        .map(String::as_str)
        .unwrap_or_else(|| die(format!("{flag} needs a value")))
}

/// Writes `text` to `--out FILE` when given, stdout otherwise.
fn emit(out: Option<&str>, text: &str) {
    match out {
        Some(path) => {
            std::fs::write(path, text).unwrap_or_else(|e| die(format!("cannot write {path}: {e}")));
        }
        None => print!("{text}"),
    }
}

fn read_report(path: &str) -> CampaignReport {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(format!("cannot read {path}: {e}")));
    CampaignReport::from_json(&text)
        .unwrap_or_else(|e| die(format!("{path} is not a campaign report: {e}")))
}

/// `figures campaign`: run a campaign spec (small demo by default)
/// against the persistent store, print the byte-stable JSON report to
/// stdout and the cache accounting to stderr.
fn campaign_cmd(args: &[String]) {
    let mut spec_path: Option<String> = None;
    let mut workers = 4usize;
    let mut shard: Option<Shard> = None;
    let mut store_dir: Option<String> = None;
    let mut no_cache = false;
    let mut gc = false;
    let mut out: Option<String> = None;
    let mut stats_json: Option<String> = None;
    let mut profile_out: Option<String> = None;
    let mut fault_plan: Option<String> = None;
    let mut fault_seed = 0u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--spec" => spec_path = Some(flag_value(args, &mut i, "--spec").to_string()),
            "--workers" => {
                workers = flag_value(args, &mut i, "--workers")
                    .parse()
                    .unwrap_or_else(|_| die("--workers needs a positive integer"));
            }
            "--shard" => {
                shard = Some(
                    Shard::parse(flag_value(args, &mut i, "--shard")).unwrap_or_else(|e| die(e)),
                );
            }
            "--store" => {
                // DIR is optional: a following flag (or nothing) means
                // the default location.
                match args.get(i + 1) {
                    Some(next) if !next.starts_with("--") => {
                        store_dir = Some(next.clone());
                        i += 1;
                    }
                    _ => store_dir = Some(DEFAULT_STORE_DIR.to_string()),
                }
            }
            "--no-cache" => no_cache = true,
            "--gc" => gc = true,
            "--out" => out = Some(flag_value(args, &mut i, "--out").to_string()),
            "--stats-json" => {
                stats_json = Some(flag_value(args, &mut i, "--stats-json").to_string());
            }
            "--profile-out" => {
                profile_out = Some(flag_value(args, &mut i, "--profile-out").to_string());
            }
            "--inject-faults" => {
                fault_plan = Some(flag_value(args, &mut i, "--inject-faults").to_string());
            }
            "--fault-seed" => {
                fault_seed = flag_value(args, &mut i, "--fault-seed")
                    .parse()
                    .unwrap_or_else(|_| die("--fault-seed needs an unsigned integer"));
            }
            other => die(format!("unknown campaign flag `{other}`")),
        }
        i += 1;
    }

    let spec = match &spec_path {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| die(format!("cannot read {path}: {e}")));
            serde_json::from_str::<CampaignSpec>(&text)
                .unwrap_or_else(|e| die(format!("{path} is not a campaign spec: {e}")))
        }
        None => CampaignSpec::small_demo(),
    };
    // The fault injector only makes sense against a real store: without
    // `--store` there are no backend ops to perturb.
    if fault_plan.is_some() && (store_dir.is_none() || no_cache) {
        die("--inject-faults needs --store (and not --no-cache)");
    }
    let store = if no_cache {
        None
    } else {
        store_dir.as_ref().map(|dir| match &fault_plan {
            Some(path) => {
                let text = std::fs::read_to_string(path)
                    .unwrap_or_else(|e| die(format!("cannot read {path}: {e}")));
                let plan = FaultPlan::from_json(&text)
                    .unwrap_or_else(|e| die(format!("{path} is not a fault plan: {e}")));
                let backend = FaultyBackend::new(Arc::new(FsBackend), plan, fault_seed);
                Store::open_with_backend(dir, Arc::new(backend))
                    .unwrap_or_else(|e| die(format!("cannot open store {dir}: {e}")))
            }
            None => {
                Store::open(dir).unwrap_or_else(|e| die(format!("cannot open store {dir}: {e}")))
            }
        })
    };
    let opts = StoreOptions {
        workers,
        store: store.as_ref(),
        shard,
    };
    // Arm the wall-clock phase timers only when a profile is requested —
    // the report itself is byte-identical either way (timers and
    // counters are strictly out-of-band).
    if profile_out.is_some() {
        incdes_obs::phase::set_enabled(true);
    }
    let StoredCampaign {
        report,
        stats,
        profiles,
        failures,
    } = run_campaign_store(&spec, &opts).unwrap_or_else(|e| die(e));
    incdes_obs::phase::set_enabled(false);
    // Accounting goes to stderr: stdout must stay byte-stable so
    // sharded CI logs are auditable without perturbing artifacts.
    eprintln!(
        "# campaign {}{}: {} scenarios, {} selected, {} cache hits, {} executed, \
         {} corrupt blobs, {} store errors, {} store retries, {} failed{}",
        spec.name,
        shard.map(|s| format!(" (shard {s})")).unwrap_or_default(),
        stats.scenarios,
        stats.selected,
        stats.hits,
        stats.executed,
        stats.corrupt,
        stats.store_errors,
        stats.store_retries,
        stats.failed,
        if stats.degraded { " [degraded]" } else { "" },
    );
    // Quarantined scenarios: named on stderr so CI logs show *which*
    // grid points panicked, not just a count.
    for f in &failures {
        eprintln!(
            "# quarantined scenario #{} after {} attempt(s): {}",
            f.index, f.attempts, f.panic_message
        );
    }
    // Machine-parseable mirror of the stderr accounting — a side file,
    // never the stdout report.
    if let Some(path) = &stats_json {
        let json = format!(
            "{{\"scenarios\":{},\"selected\":{},\"hits\":{},\"executed\":{},\
             \"corrupt\":{},\"store_errors\":{},\"store_retries\":{},\
             \"failed\":{},\"degraded\":{}}}\n",
            stats.scenarios,
            stats.selected,
            stats.hits,
            stats.executed,
            stats.corrupt,
            stats.store_errors,
            stats.store_retries,
            stats.failed,
            stats.degraded,
        );
        std::fs::write(path, json).unwrap_or_else(|e| die(format!("cannot write {path}: {e}")));
    }
    // Per-scenario observability profiles (executed scenarios only;
    // cache hits did their work in an earlier process).
    if let Some(path) = &profile_out {
        let mut json = format!("{{\"campaign\":{:?},\"scenarios\":[", spec.name);
        for (k, p) in profiles.iter().enumerate() {
            if k > 0 {
                json.push(',');
            }
            json.push_str(&format!(
                "{{\"index\":{},\"counters\":{},\"phases\":{}}}",
                p.index,
                p.counters.to_json(),
                p.phases.to_json(),
            ));
        }
        json.push_str("]}\n");
        std::fs::write(path, json).unwrap_or_else(|e| die(format!("cannot write {path}: {e}")));
    }
    if gc {
        if let Some(store) = &store {
            let live = live_keys(&spec).unwrap_or_else(|e| die(e));
            match store.gc(&live) {
                Ok(s) => eprintln!("# store gc: kept {}, removed {}", s.kept, s.removed),
                Err(e) => eprintln!("# store gc failed: {e}"),
            }
        }
    }
    let mut json = report.to_json_pretty().expect("report serializes");
    json.push('\n');
    emit(out.as_deref(), &json);
    // Partial failure: the (partial) report above is still emitted, but
    // the exit code must reflect the quarantined scenarios.
    if !failures.is_empty() {
        std::process::exit(3);
    }
}

/// `figures merge`: join shard reports into the canonical report.
fn merge_cmd(args: &[String]) {
    let mut out: Option<String> = None;
    let mut paths: Vec<&String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => out = Some(flag_value(args, &mut i, "--out").to_string()),
            flag if flag.starts_with("--") => die(format!("unknown merge flag `{flag}`")),
            _ => paths.push(&args[i]),
        }
        i += 1;
    }
    if paths.is_empty() {
        die("merge needs at least one shard report file");
    }
    let parts: Vec<CampaignReport> = paths.iter().map(|p| read_report(p)).collect();
    let merged = merge_reports(parts).unwrap_or_else(|e| die(e));
    let mut json = merged.to_json_pretty().expect("report serializes");
    json.push('\n');
    emit(out.as_deref(), &json);
}

/// `figures tables`: render a report into the paper's result tables.
fn tables_cmd(args: &[String]) {
    let mut csv_out: Option<String> = None;
    let mut path: Option<&String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--csv" => csv_out = Some(flag_value(args, &mut i, "--csv").to_string()),
            flag if flag.starts_with("--") => die(format!("unknown tables flag `{flag}`")),
            _ if path.is_some() => {
                die("tables takes exactly one report file (run `figures merge` first to combine shards)")
            }
            _ => path = Some(&args[i]),
        }
        i += 1;
    }
    let path = path.unwrap_or_else(|| die("tables needs a report file"));
    let report = read_report(path);
    print!("{}", tables::render_text(&report));
    let csv = tables::render_csv(&report);
    match csv_out {
        Some(path) => {
            std::fs::write(&path, &csv)
                .unwrap_or_else(|e| die(format!("cannot write {path}: {e}")));
        }
        None => {
            println!("## CSV");
            print!("{csv}");
        }
    }
}

/// `figures bench-store`: cold vs. warm demo campaign wall-clock,
/// written as a `BENCH_campaign.json` perf artifact.
fn bench_store_cmd(args: &[String]) {
    let mut out = "BENCH_campaign.json".to_string();
    let mut store_dir = "target/bench-campaign-store".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => out = flag_value(args, &mut i, "--out").to_string(),
            "--store" => store_dir = flag_value(args, &mut i, "--store").to_string(),
            other => die(format!("unknown bench-store flag `{other}`")),
        }
        i += 1;
    }

    // Cold: a fresh store directory.
    let _ = std::fs::remove_dir_all(&store_dir);
    let store =
        Store::open(&store_dir).unwrap_or_else(|e| die(format!("cannot open {store_dir}: {e}")));
    let spec = CampaignSpec::small_demo();
    let opts = StoreOptions {
        workers: 4,
        store: Some(&store),
        shard: None,
    };

    let t0 = Instant::now();
    let cold = run_campaign_store(&spec, &opts).unwrap_or_else(|e| die(e));
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t1 = Instant::now();
    let warm = run_campaign_store(&spec, &opts).unwrap_or_else(|e| die(e));
    let warm_ms = t1.elapsed().as_secs_f64() * 1e3;

    if warm.stats.executed != 0 {
        die(format!(
            "warm rerun executed {} scenarios (expected 0)",
            warm.stats.executed
        ));
    }
    if cold.report != warm.report {
        die("warm report differs from cold report");
    }

    let json = format!(
        "{{\n  \"bench\": \"campaign_store\",\n  \"campaign\": \"{}\",\n  \
         \"scenarios\": {},\n  \"cold_ms\": {:.3},\n  \"warm_ms\": {:.3},\n  \
         \"speedup\": {:.1},\n  \"warm_executed\": {},\n  \"warm_cache_hits\": {}\n}}\n",
        spec.name,
        cold.stats.scenarios,
        cold_ms,
        warm_ms,
        cold_ms / warm_ms.max(1e-6),
        warm.stats.executed,
        warm.stats.hits,
    );
    std::fs::write(&out, &json).unwrap_or_else(|e| die(format!("cannot write {out}: {e}")));
    eprintln!(
        "# bench-store: cold {cold_ms:.1} ms, warm {warm_ms:.1} ms \
         ({} scenarios, all cached on rerun) -> {out}",
        cold.stats.scenarios
    );
}

/// `figures bench-eval`: naive vs. incremental-engine evaluation
/// throughput per system size and strategy, written as the
/// `BENCH_eval.json` perf artifact. Dies unless the engine path on the
/// largest scenario actually saved work (memo hits > 0, raw schedules <
/// evaluations), the delta path beats the full engine on raw
/// throughput, **and** delta does not lose MH/SA strategy wall-clock on
/// the largest current application — the cheap CI regression guards on
/// the engine.
fn bench_eval_cmd(args: &[String]) {
    let mut out = "BENCH_eval.json".to_string();
    let mut evals = 400usize;
    let mut threads = 4usize;
    let mut full = false;
    let mut profile = false;
    let mut trace_out: Option<String> = None;
    let mut min_delta_eps: Option<f64> = None;
    let mut min_delta_speedup: Option<f64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => out = flag_value(args, &mut i, "--out").to_string(),
            "--min-delta-evals-per-sec" => {
                min_delta_eps = Some(
                    flag_value(args, &mut i, "--min-delta-evals-per-sec")
                        .parse()
                        .unwrap_or_else(|_| die("--min-delta-evals-per-sec needs a number")),
                );
            }
            "--min-delta-speedup" => {
                min_delta_speedup = Some(
                    flag_value(args, &mut i, "--min-delta-speedup")
                        .parse()
                        .unwrap_or_else(|_| die("--min-delta-speedup needs a number")),
                );
            }
            "--evals" => {
                evals = flag_value(args, &mut i, "--evals")
                    .parse()
                    .unwrap_or_else(|_| die("--evals needs a positive integer"));
            }
            "--threads" => {
                threads = flag_value(args, &mut i, "--threads")
                    .parse()
                    .unwrap_or_else(|_| die("--threads needs a positive integer"));
                if threads == 0 {
                    die("--threads needs a positive integer");
                }
            }
            "--full" => full = true,
            "--profile" => profile = true,
            "--trace" => trace_out = Some(flag_value(args, &mut i, "--trace").to_string()),
            other => die(format!("unknown bench-eval flag `{other}`")),
        }
        i += 1;
    }
    let (preset, preset_name) = if full {
        (dac2001(), "dac2001")
    } else {
        (dac2001_small(), "dac2001-small")
    };
    let (mh_cfg, sa_cfg) = configs(!full);

    let t0 = Instant::now();
    let bench = incdes_bench::run_eval_bench(&preset, evals, &mh_cfg, &sa_cfg, threads, profile);
    eprintln!(
        "# bench-eval: {} sizes x {} evals + 3 strategies in {:.1?}",
        bench.raw.len(),
        evals,
        t0.elapsed()
    );

    println!("## Evaluation engine — raw evaluate() throughput (naive vs. engine vs. delta)");
    println!(
        "{:>7} {:>8} {:>12} {:>8} {:>13} {:>13} {:>13} {:>8} {:>8} {:>9} {:>10} {:>10} {:>10}",
        "system",
        "current",
        "frozen jobs",
        "evals",
        "naive ev/s",
        "engine ev/s",
        "delta ev/s",
        "speedup",
        "d-spdup",
        "d/engine",
        "memo hits",
        "raw scheds",
        "delta runs"
    );
    for r in &bench.raw {
        println!(
            "{:>7} {:>8} {:>12} {:>8} {:>13.0} {:>13.0} {:>13.0} {:>8.2} {:>8.2} {:>9.2} {:>10} {:>10} {:>10}",
            r.size,
            r.current,
            r.frozen_jobs,
            r.evals,
            r.naive_evals_per_sec,
            r.engine_evals_per_sec,
            r.delta_evals_per_sec,
            r.speedup,
            r.delta_speedup,
            r.delta_vs_engine,
            r.memo_hits,
            r.raw_schedules,
            r.delta_schedules
        );
    }
    println!("\n## Evaluation engine — full strategy runs (parallel mode at {threads} threads)");
    println!(
        "{:>6} {:>6} {:>12} {:>12} {:>12} {:>12} {:>8} {:>8} {:>9} {:>8} {:>8}",
        "size",
        "strat",
        "naive ms",
        "engine ms",
        "delta ms",
        "par ms",
        "speedup",
        "d-spdup",
        "d/engine",
        "par/d",
        "evals"
    );
    for r in &bench.strategies {
        println!(
            "{:>6} {:>6} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>8.2} {:>8.2} {:>9.2} {:>8.2} {:>8}",
            r.size,
            r.strategy,
            r.naive_ms,
            r.engine_ms,
            r.delta_ms,
            r.par_ms,
            r.speedup,
            r.delta_speedup,
            r.delta_vs_engine,
            r.par_vs_delta,
            r.evaluations
        );
    }

    let largest = bench.raw.last().expect("presets have sizes");

    // Profiling diagnostics print *before* the regression gates: when a
    // gate fires, the breakdown is exactly what the operator needs to
    // see where the time went.
    if profile {
        let p = largest.profile.expect("--profile fills every raw row");
        eprintln!(
            "# bench-eval profile (largest base): undo {:.2}ms splice {:.2}ms \
             replace {:.2}ms slack {:.2}ms objective {:.2}ms memo {:.2}ms \
             bake {:.2}ms prio {:.2}ms | wall {:.2}ms timers {:.2}ms coverage {:.1}%",
            p.undo_ms,
            p.splice_ms,
            p.replace_ms,
            p.slack_ms,
            p.objective_ms,
            p.memo_ms,
            p.bake_ms,
            p.priority_refresh_ms,
            p.wall_ms,
            p.timer_overhead_ms,
            p.coverage * 100.0,
        );
    }

    // Regression guards on the largest scenario: the memo must have
    // skipped duplicate schedules, the delta path must have engaged,
    // and it must beat the full engine.
    if largest.memo_hits == 0 {
        die("engine memo never hit on the bench stream (expected revisits to be served)");
    }
    if largest.raw_schedules >= largest.evals {
        die(format!(
            "engine executed {} raw schedules for {} evaluations (expected fewer)",
            largest.raw_schedules, largest.evals
        ));
    }
    if largest.delta_schedules == 0 {
        die("the delta path never engaged on the single-move bench stream");
    }
    if largest.delta_evals_per_sec <= largest.engine_evals_per_sec {
        die(format!(
            "delta path ({:.0} evals/s) does not beat the full engine ({:.0} evals/s) \
             on the largest frozen base",
            largest.delta_evals_per_sec, largest.engine_evals_per_sec
        ));
    }
    // Optional CI floors on the largest frozen base. The absolute
    // evals/s floor catches catastrophic regressions but depends on the
    // host, so CI sizes it for its slowest runners; the delta-vs-naive
    // speedup ratio is normalized within the run and is the portable
    // regression gate.
    if let Some(floor) = min_delta_eps {
        if largest.delta_evals_per_sec < floor {
            die(format!(
                "delta path throughput on the largest frozen base is below the floor: \
                 {:.0} evals/s < {floor:.0} evals/s",
                largest.delta_evals_per_sec
            ));
        }
    }
    if let Some(floor) = min_delta_speedup {
        if largest.delta_speedup < floor {
            die(format!(
                "delta-vs-naive speedup on the largest frozen base is below the floor: \
                 {:.2}x < {floor:.2}x",
                largest.delta_speedup
            ));
        }
    }
    // Strategy-level guard: raw evals/s can win while a strategy still
    // loses wall-clock (the PR 5 gap) — the delta path must not lose
    // MH or SA on the largest current application. AH runs a couple of
    // evaluations and stays on the full path by design; a 5 % grace
    // absorbs timer noise on millisecond-scale runs.
    let largest_size = bench
        .strategies
        .iter()
        .map(|r| r.size)
        .max()
        .expect("strategy rows exist");
    for r in bench
        .strategies
        .iter()
        .filter(|r| r.size == largest_size && matches!(r.strategy, "MH" | "SA"))
    {
        if r.delta_vs_engine < 0.95 {
            die(format!(
                "delta path loses {} strategy wall-clock on size {}: {:.3} ms vs engine {:.3} ms \
                 (delta_vs_engine {:.2})",
                r.strategy, r.size, r.delta_ms, r.engine_ms, r.delta_vs_engine
            ));
        }
    }

    // Parallel-search guard, at *every* size: batched MH widening must
    // not lose to the sequential delta path anywhere (same 5 % noise
    // grace). The small-batch cutover and the available-parallelism cap
    // collapse the dispatch onto the inline worker whenever spawning
    // would cost more than it buys, so this holds even on machines with
    // fewer hardware threads than requested — the old skip-on-small-hw
    // escape hatch is gone on purpose: it hid exactly the small-system
    // regression the cutover fixes.
    for r in bench.strategies.iter().filter(|r| r.strategy == "MH") {
        if r.par_vs_delta < 0.95 {
            die(format!(
                "parallel MH at {} threads loses to sequential delta on size {}: \
                 {:.3} ms vs {:.3} ms (par_vs_delta {:.2})",
                threads, r.size, r.par_ms, r.delta_ms, r.par_vs_delta
            ));
        }
    }

    // Profiling gate: the five core phases (undo/splice/replace/slack/
    // objective) must explain ≥ 90 % of the profiled delta pass on the
    // largest base, after discounting the separately-reported memo and
    // bake planes and the calibrated timer self-overhead (at a few µs
    // per evaluation, clock reads are a double-digit share of wall).
    // Lower coverage means the breakdown is blind to where the
    // delta-evaluation time actually goes.
    if profile {
        let p = largest.profile.expect("--profile fills every raw row");
        if p.coverage < 0.90 {
            die(format!(
                "profiled phases cover only {:.1}% of the delta-evaluation wall-clock \
                 on the largest base (expected >= 90%)",
                p.coverage * 100.0
            ));
        }
    }

    if let Some(path) = &trace_out {
        let trace = incdes_bench::capture_trace(&preset, evals.min(256));
        std::fs::write(path, &trace).unwrap_or_else(|e| die(format!("cannot write {path}: {e}")));
        eprintln!("# bench-eval: chrome trace -> {path}");
    }

    let json = incdes_bench::eval_bench::render_json(&bench, preset_name);
    std::fs::write(&out, &json).unwrap_or_else(|e| die(format!("cannot write {out}: {e}")));
    eprintln!(
        "# bench-eval: largest size {} speedup {:.2}x -> {out}",
        largest.size, largest.speedup
    );
}

fn configs(small: bool) -> (MhConfig, SaConfig) {
    if small {
        (
            MhConfig {
                max_iterations: 24,
                ..MhConfig::default()
            },
            SaConfig::quick(),
        )
    } else {
        (
            MhConfig::default(),
            SaConfig {
                max_evaluations: 4000,
                ..SaConfig::default()
            },
        )
    }
}

fn fig1(preset: &PaperPreset, mh: &MhConfig, sa: &SaConfig) {
    print_fig1(&run_quality(preset, mh, sa));
}

fn fig2(preset: &PaperPreset, mh: &MhConfig, sa: &SaConfig) {
    // Single-threaded: figure 2 is about wall-clock per strategy.
    print_fig2(&run_runtime(preset, mh, sa));
}

fn print_fig1(rows: &[QualityRow]) {
    println!("## Figure 1 — avg % deviation of cost C from near-optimal (SA)");
    println!(
        "{:>6} {:>10} {:>10} {:>10} | {:>10} {:>10} {:>10} {:>5}",
        "size", "AH dev%", "MH dev%", "SA dev%", "AH cost", "MH cost", "SA cost", "n"
    );
    for r in rows {
        println!(
            "{:>6} {:>10.1} {:>10.1} {:>10.1} | {:>10.1} {:>10.1} {:>10.1} {:>5}",
            r.size,
            r.ah_deviation,
            r.mh_deviation,
            0.0,
            r.ah_cost,
            r.mh_cost,
            r.sa_cost,
            r.instances
        );
    }
    println!();
}

fn print_fig2(rows: &[QualityRow]) {
    println!("## Figure 2 — avg execution time per strategy");
    println!("{:>6} {:>12} {:>12} {:>12}", "size", "AH", "MH", "SA");
    for r in rows {
        println!(
            "{:>6} {:>12.3?} {:>12.3?} {:>12.3?}",
            r.size, r.ah_time, r.mh_time, r.sa_time
        );
    }
    println!();
}

fn fig3(preset: &PaperPreset, mh: &MhConfig) {
    println!("## Figure 3 — % of future applications mappable after the current app");
    let rows = run_future(preset, mh, 4);
    println!(
        "{:>6} {:>10} {:>10} {:>7}",
        "size", "AH %", "MH %", "probes"
    );
    for r in &rows {
        println!(
            "{:>6} {:>10.1} {:>10.1} {:>7}",
            r.size, r.ah_mapped_percent, r.mh_mapped_percent, r.probes
        );
    }
    println!();
}

fn table1(preset: &PaperPreset) {
    println!("## Table 1 — metric sanity on the frozen base system (per seed)");
    println!(
        "{:>6} {:>8} {:>8} {:>10} {:>10}",
        "seed", "C1P%", "C1m%", "C2P", "C2m"
    );
    let f = scaled_future(preset);
    for &seed in &preset.seeds {
        let base = incdes_bench::build_base_system(preset, seed);
        let slack = base.system.slack();
        let c1p = incdes_metrics::c1_processes(&slack, &f, incdes_metrics::FitPolicy::BestFit);
        let c1m = incdes_metrics::c1_messages(
            base.system.arch(),
            &slack,
            &f,
            incdes_metrics::FitPolicy::BestFit,
        );
        let c2p = incdes_metrics::c2_processes(&slack, f.t_min);
        let c2m = incdes_metrics::c2_messages(&slack, f.t_min);
        println!(
            "{:>6} {:>8.1} {:>8.1} {:>10} {:>10}",
            seed, c1p, c1m, c2p, c2m
        );
    }
    println!();
}

fn ablate_fit(preset: &PaperPreset) {
    println!("## Ablation — C1 bin-packing policy");
    println!("{:>10} {:>10} {:>10}", "policy", "C1P%", "C1m%");
    for (name, c1p, c1m) in run_fit_ablation(preset) {
        println!("{:>10} {:>10.1} {:>10.1}", name, c1p, c1m);
    }
    println!();
}

fn ablate_mh(preset: &PaperPreset) {
    let size = preset.current_sizes[preset.current_sizes.len() / 2];
    println!("## Ablation — MH candidate filtering (size {size})");
    println!(
        "{:>6} {:>12} {:>10} {:>12} {:>10}",
        "seed", "filt cost", "filt evals", "exh cost", "exh evals"
    );
    for (seed, fc, fe, ec, ee) in run_mh_ablation(preset, size) {
        println!(
            "{:>6} {:>12.1} {:>10} {:>12.1} {:>10}",
            seed, fc, fe, ec, ee
        );
    }
    println!();
}
