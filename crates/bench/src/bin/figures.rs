//! Regenerates the figures of Pop et al., DAC 2001.
//!
//! ```text
//! figures [f1|f2|f3|t1|ablate-fit|ablate-mh|campaign|all] [--small]
//! ```
//!
//! `--small` switches to the scaled-down preset (seconds instead of
//! minutes). Output is plain text tables; `campaign` runs the small
//! demo scenario campaign from `incdes_explore` and prints its JSON
//! report. The figure sweeps themselves are campaign-driven too (see
//! `incdes_bench::quality_campaign_spec`), so they fan out over worker
//! threads with deterministic results.

use incdes_bench::{
    run_fit_ablation, run_future, run_mh_ablation, run_quality, run_runtime, scaled_future,
    QualityRow,
};
use incdes_mapping::{MhConfig, SaConfig};
use incdes_synth::paper::{dac2001, dac2001_small, PaperPreset};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let small = args.iter().any(|a| a == "--small");
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());

    if what == "campaign" {
        campaign();
        return;
    }

    let preset = if small { dac2001_small() } else { dac2001() };
    let (mh_cfg, sa_cfg) = configs(small);

    println!(
        "# incdes figures — preset: {} (existing {} processes, seeds {:?})",
        if small { "small" } else { "dac2001" },
        preset.existing_processes,
        preset.seeds,
    );
    let f = scaled_future(&preset);
    println!(
        "# future profile: Tmin={} tneed={} bneed={}\n",
        f.t_min, f.t_need, f.b_need
    );

    let t0 = Instant::now();
    match what.as_str() {
        "f1" => fig1(&preset, &mh_cfg, &sa_cfg),
        "f2" => fig2(&preset, &mh_cfg, &sa_cfg),
        "f3" => fig3(&preset, &mh_cfg),
        "t1" => table1(&preset),
        "ablate-fit" => ablate_fit(&preset),
        "ablate-mh" => ablate_mh(&preset),
        "all" => {
            print_fig1(&run_quality(&preset, &mh_cfg, &sa_cfg));
            fig2(&preset, &mh_cfg, &sa_cfg);
            fig3(&preset, &mh_cfg);
            table1(&preset);
            ablate_fit(&preset);
            ablate_mh(&preset);
        }
        other => {
            eprintln!(
                "unknown figure '{other}' \
                 (expected f1|f2|f3|t1|ablate-fit|ablate-mh|campaign|all)"
            );
            std::process::exit(2);
        }
    }
    println!("\n# total wall-clock: {:.1?}", t0.elapsed());
}

/// Runs the small demo scenario campaign and prints its JSON report
/// (the same campaign `tests/scenario_campaign.rs` pins down).
fn campaign() {
    let spec = incdes_explore::CampaignSpec::small_demo();
    let run = incdes_explore::run_campaign(&spec, 4).expect("demo campaign spec is valid");
    println!(
        "{}",
        run.report().to_json_pretty().expect("report serializes")
    );
}

fn configs(small: bool) -> (MhConfig, SaConfig) {
    if small {
        (
            MhConfig {
                max_iterations: 24,
                ..MhConfig::default()
            },
            SaConfig::quick(),
        )
    } else {
        (
            MhConfig::default(),
            SaConfig {
                max_evaluations: 4000,
                ..SaConfig::default()
            },
        )
    }
}

fn fig1(preset: &PaperPreset, mh: &MhConfig, sa: &SaConfig) {
    print_fig1(&run_quality(preset, mh, sa));
}

fn fig2(preset: &PaperPreset, mh: &MhConfig, sa: &SaConfig) {
    // Single-threaded: figure 2 is about wall-clock per strategy.
    print_fig2(&run_runtime(preset, mh, sa));
}

fn print_fig1(rows: &[QualityRow]) {
    println!("## Figure 1 — avg % deviation of cost C from near-optimal (SA)");
    println!(
        "{:>6} {:>10} {:>10} {:>10} | {:>10} {:>10} {:>10} {:>5}",
        "size", "AH dev%", "MH dev%", "SA dev%", "AH cost", "MH cost", "SA cost", "n"
    );
    for r in rows {
        println!(
            "{:>6} {:>10.1} {:>10.1} {:>10.1} | {:>10.1} {:>10.1} {:>10.1} {:>5}",
            r.size,
            r.ah_deviation,
            r.mh_deviation,
            0.0,
            r.ah_cost,
            r.mh_cost,
            r.sa_cost,
            r.instances
        );
    }
    println!();
}

fn print_fig2(rows: &[QualityRow]) {
    println!("## Figure 2 — avg execution time per strategy");
    println!("{:>6} {:>12} {:>12} {:>12}", "size", "AH", "MH", "SA");
    for r in rows {
        println!(
            "{:>6} {:>12.3?} {:>12.3?} {:>12.3?}",
            r.size, r.ah_time, r.mh_time, r.sa_time
        );
    }
    println!();
}

fn fig3(preset: &PaperPreset, mh: &MhConfig) {
    println!("## Figure 3 — % of future applications mappable after the current app");
    let rows = run_future(preset, mh, 4);
    println!(
        "{:>6} {:>10} {:>10} {:>7}",
        "size", "AH %", "MH %", "probes"
    );
    for r in &rows {
        println!(
            "{:>6} {:>10.1} {:>10.1} {:>7}",
            r.size, r.ah_mapped_percent, r.mh_mapped_percent, r.probes
        );
    }
    println!();
}

fn table1(preset: &PaperPreset) {
    println!("## Table 1 — metric sanity on the frozen base system (per seed)");
    println!(
        "{:>6} {:>8} {:>8} {:>10} {:>10}",
        "seed", "C1P%", "C1m%", "C2P", "C2m"
    );
    let f = scaled_future(preset);
    for &seed in &preset.seeds {
        let base = incdes_bench::build_base_system(preset, seed);
        let slack = base.system.slack();
        let c1p = incdes_metrics::c1_processes(&slack, &f, incdes_metrics::FitPolicy::BestFit);
        let c1m = incdes_metrics::c1_messages(
            base.system.arch(),
            &slack,
            &f,
            incdes_metrics::FitPolicy::BestFit,
        );
        let c2p = incdes_metrics::c2_processes(&slack, f.t_min);
        let c2m = incdes_metrics::c2_messages(&slack, f.t_min);
        println!(
            "{:>6} {:>8.1} {:>8.1} {:>10} {:>10}",
            seed, c1p, c1m, c2p, c2m
        );
    }
    println!();
}

fn ablate_fit(preset: &PaperPreset) {
    println!("## Ablation — C1 bin-packing policy");
    println!("{:>10} {:>10} {:>10}", "policy", "C1P%", "C1m%");
    for (name, c1p, c1m) in run_fit_ablation(preset) {
        println!("{:>10} {:>10.1} {:>10.1}", name, c1p, c1m);
    }
    println!();
}

fn ablate_mh(preset: &PaperPreset) {
    let size = preset.current_sizes[preset.current_sizes.len() / 2];
    println!("## Ablation — MH candidate filtering (size {size})");
    println!(
        "{:>6} {:>12} {:>10} {:>12} {:>10}",
        "seed", "filt cost", "filt evals", "exh cost", "exh evals"
    );
    for (seed, fc, fe, ec, ee) in run_mh_ablation(preset, size) {
        println!(
            "{:>6} {:>12.1} {:>10} {:>12.1} {:>10}",
            seed, fc, fe, ec, ee
        );
    }
    println!();
}
