//! Paper-table rendering of campaign reports.
//!
//! `figures tables <report.json>` turns a (merged) [`CampaignReport`]
//! into the paper's result tables: average **modification cost** per
//! strategy and size — the objective `C` of each scenario's final
//! committed application, i.e. the cost of the incremental modification
//! the scenario models — plus Figure-2-style quality columns. The
//! report carries no wall-clock fields (that is the determinism
//! guarantee), so the runtime proxy is the deterministic schedule
//! **evaluation count**, which is what the paper's figure 2 actually
//! varies with.
//!
//! Output is aligned text plus CSV; both are pure functions of the
//! report, so sharded CI runs render identical tables.

use incdes_explore::{CampaignReport, ScenarioReport};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// One aggregated row: a `(size, strategy)` cell of the campaign grid.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRow {
    /// Value on the size axis.
    pub size: usize,
    /// Strategy display name (`AH`, `MH`, `SA`).
    pub strategy: String,
    /// Scenarios aggregated into this row.
    pub scenarios: usize,
    /// Scenarios whose final add step committed (its cost is defined).
    pub committed: usize,
    /// Average modification cost over the committed scenarios.
    pub avg_cost: f64,
    /// Average schedule evaluations per scenario (runtime proxy).
    pub avg_evaluations: f64,
    /// Average strategy iterations per scenario.
    pub avg_iterations: f64,
    /// Feasible steps over all steps of the row's scenarios.
    pub feasible_steps: usize,
    /// All steps of the row's scenarios.
    pub steps: usize,
    /// Feasible probes over all probe steps (future mappability).
    pub probe_hits: usize,
    /// All probe steps.
    pub probes: usize,
}

/// The modification cost of one scenario: the objective `C` of its
/// *last* add step that carries a cost (the incremental modification the
/// scenario models). `None` when no add committed.
#[must_use]
pub fn modification_cost(scenario: &ScenarioReport) -> Option<f64> {
    scenario
        .steps
        .iter()
        .rev()
        .find(|s| s.action == "add" && s.cost.is_some())
        .and_then(|s| s.cost)
        .map(|c| c.total)
}

/// Strategy column order: the paper's AH, MH, SA first, anything else
/// alphabetical after.
fn strategy_rank(name: &str) -> (usize, String) {
    let rank = match name {
        "AH" => 0,
        "MH" => 1,
        "SA" => 2,
        _ => 3,
    };
    (rank, name.to_string())
}

/// Aggregates a report into `(size, strategy)` rows, sorted by size
/// then by strategy (AH, MH, SA, others).
#[must_use]
pub fn table_rows(report: &CampaignReport) -> Vec<TableRow> {
    let mut cells: BTreeSet<(usize, (usize, String))> = BTreeSet::new();
    for s in &report.scenarios {
        cells.insert((s.size, strategy_rank(&s.strategy)));
    }
    let mut rows = Vec::new();
    for (size, (_, strategy)) in cells {
        let group: Vec<&ScenarioReport> = report
            .scenarios
            .iter()
            .filter(|s| s.size == size && s.strategy == strategy)
            .collect();
        let committed: Vec<f64> = group.iter().filter_map(|s| modification_cost(s)).collect();
        let steps: usize = group.iter().map(|s| s.steps.len()).sum();
        let feasible_steps = group
            .iter()
            .flat_map(|s| &s.steps)
            .filter(|s| s.feasible)
            .count();
        let probes = group
            .iter()
            .flat_map(|s| &s.steps)
            .filter(|s| s.action == "probe")
            .count();
        let probe_hits = group
            .iter()
            .flat_map(|s| &s.steps)
            .filter(|s| s.action == "probe" && s.feasible)
            .count();
        let evaluations: usize = group
            .iter()
            .flat_map(|s| &s.steps)
            .map(|s| s.evaluations)
            .sum();
        let iterations: usize = group
            .iter()
            .flat_map(|s| &s.steps)
            .map(|s| s.iterations)
            .sum();
        let n = group.len().max(1) as f64;
        rows.push(TableRow {
            size,
            strategy,
            scenarios: group.len(),
            committed: committed.len(),
            avg_cost: committed.iter().sum::<f64>() / committed.len().max(1) as f64,
            avg_evaluations: evaluations as f64 / n,
            avg_iterations: iterations as f64 / n,
            feasible_steps,
            steps,
            probe_hits,
            probes,
        });
    }
    rows
}

/// Renders the aligned-text tables of a report.
#[must_use]
pub fn render_text(report: &CampaignReport) -> String {
    let rows = table_rows(report);
    let strategies: Vec<String> = rows
        .iter()
        .map(|r| strategy_rank(&r.strategy))
        .collect::<BTreeSet<_>>()
        .into_iter()
        .map(|(_, s)| s)
        .collect();
    let sizes: Vec<usize> = rows
        .iter()
        .map(|r| r.size)
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let cell = |size: usize, strategy: &str| {
        rows.iter()
            .find(|r| r.size == size && r.strategy == strategy)
    };
    let mut out = String::new();

    let _ = writeln!(
        out,
        "## Campaign `{}` — avg modification cost per strategy/size",
        report.campaign
    );
    let _ = write!(out, "{:>6}", "size");
    for s in &strategies {
        let _ = write!(out, " {:>10}", format!("{s} cost"));
    }
    if strategies.iter().any(|s| s == "SA") {
        for s in strategies.iter().filter(|s| *s != "SA") {
            let _ = write!(out, " {:>10}", format!("{s} dev%"));
        }
    }
    let _ = writeln!(out, " {:>5}", "n");
    for &size in &sizes {
        let _ = write!(out, "{size:>6}");
        for s in &strategies {
            match cell(size, s) {
                Some(r) if r.committed > 0 => {
                    let _ = write!(out, " {:>10.1}", r.avg_cost);
                }
                _ => {
                    let _ = write!(out, " {:>10}", "-");
                }
            }
        }
        let sa = cell(size, "SA")
            .filter(|r| r.committed > 0)
            .map(|r| r.avg_cost);
        if strategies.iter().any(|s| s == "SA") {
            for s in strategies.iter().filter(|s| *s != "SA") {
                match (cell(size, s).filter(|r| r.committed > 0), sa) {
                    // The deviation is undefined at sa_cost == 0 (the
                    // demo campaign's unloaded systems); print `-`
                    // rather than clamping the denominator, which would
                    // silently distort every small-cost row.
                    (Some(r), Some(sa_cost)) if sa_cost > 0.0 => {
                        let dev = 100.0 * (r.avg_cost - sa_cost) / sa_cost;
                        let _ = write!(out, " {:>10.1}", dev);
                    }
                    _ => {
                        let _ = write!(out, " {:>10}", "-");
                    }
                }
            }
        }
        let n = strategies
            .iter()
            .filter_map(|s| cell(size, s))
            .map(|r| r.scenarios)
            .max()
            .unwrap_or(0);
        let _ = writeln!(out, " {n:>5}");
    }
    let _ = writeln!(out);

    let _ = writeln!(
        out,
        "## Schedule evaluations per strategy/size (deterministic runtime proxy, fig. 2)"
    );
    let _ = write!(out, "{:>6}", "size");
    for s in &strategies {
        let _ = write!(out, " {:>11}", format!("{s} evals"));
        let _ = write!(out, " {:>11}", format!("{s} iters"));
    }
    let _ = writeln!(out);
    for &size in &sizes {
        let _ = write!(out, "{size:>6}");
        for s in &strategies {
            match cell(size, s) {
                Some(r) => {
                    let _ = write!(out, " {:>11.1}", r.avg_evaluations);
                    let _ = write!(out, " {:>11.1}", r.avg_iterations);
                }
                None => {
                    let _ = write!(out, " {:>11} {:>11}", "-", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(out);

    if rows.iter().any(|r| r.probes > 0) {
        let _ = writeln!(
            out,
            "## Future mappability per strategy/size (probe hit rate, fig. 3)"
        );
        let _ = write!(out, "{:>6}", "size");
        for s in &strategies {
            let _ = write!(out, " {:>10}", format!("{s} map%"));
        }
        let _ = writeln!(out, " {:>7}", "probes");
        for &size in &sizes {
            let _ = write!(out, "{size:>6}");
            let mut probes = 0;
            for s in &strategies {
                match cell(size, s) {
                    Some(r) if r.probes > 0 => {
                        probes = probes.max(r.probes);
                        let _ = write!(
                            out,
                            " {:>10.1}",
                            100.0 * r.probe_hits as f64 / r.probes as f64
                        );
                    }
                    _ => {
                        let _ = write!(out, " {:>10}", "-");
                    }
                }
            }
            let _ = writeln!(out, " {probes:>7}");
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders the long-form CSV of a report (one row per `(size,
/// strategy)` cell, header included).
#[must_use]
pub fn render_csv(report: &CampaignReport) -> String {
    let mut out = String::from(
        "campaign,size,strategy,scenarios,committed,avg_modification_cost,\
         avg_evaluations,avg_iterations,feasible_steps,steps,probe_hits,probes\n",
    );
    for r in table_rows(report) {
        let cost = if r.committed > 0 {
            format!("{:.3}", r.avg_cost)
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{:.3},{:.3},{},{},{},{}",
            report.campaign,
            r.size,
            r.strategy,
            r.scenarios,
            r.committed,
            cost,
            r.avg_evaluations,
            r.avg_iterations,
            r.feasible_steps,
            r.steps,
            r.probe_hits,
            r.probes,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdes_explore::{run_campaign, CampaignSpec};

    fn demo_report() -> CampaignReport {
        run_campaign(&CampaignSpec::small_demo(), 4)
            .expect("demo spec is valid")
            .report()
    }

    #[test]
    fn rows_cover_the_grid_and_costs_are_finite() {
        let report = demo_report();
        let rows = table_rows(&report);
        // 2 sizes × 2 strategies.
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.scenarios == 2));
        assert!(rows.iter().all(|r| r.committed == 2));
        assert!(rows.iter().all(|r| r.avg_cost.is_finite()));
        assert!(rows.iter().all(|r| r.probes == 2 && r.probe_hits == 2));
        // MH before SA at each size.
        assert_eq!(rows[0].strategy, "MH");
        assert_eq!(rows[1].strategy, "SA");
        assert!(rows[0].size <= rows[2].size);
    }

    #[test]
    fn modification_cost_is_the_last_add_with_cost() {
        let report = demo_report();
        let scenario = &report.scenarios[0];
        let expected = scenario
            .steps
            .iter()
            .filter(|s| s.action == "add")
            .filter_map(|s| s.cost)
            .next_back()
            .unwrap()
            .total;
        assert_eq!(modification_cost(scenario), Some(expected));
    }

    #[test]
    fn rendering_is_deterministic_and_structured() {
        let report = demo_report();
        let text = render_text(&report);
        assert_eq!(text, render_text(&report), "text render is deterministic");
        assert!(text.contains("avg modification cost"));
        assert!(text.contains("MH dev%"), "SA present ⇒ deviation column");
        assert!(text.contains("Future mappability"));

        let csv = render_csv(&report);
        assert_eq!(csv, render_csv(&report), "csv render is deterministic");
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + 4, "header + one row per grid cell");
        assert!(lines[0].starts_with("campaign,size,strategy"));
        assert!(lines[1].starts_with("small-demo,6,MH,2,2,"));
        let fields = lines[0].split(',').count();
        assert!(lines.iter().all(|l| l.split(',').count() == fields));
    }
}
