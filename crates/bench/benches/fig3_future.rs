//! Criterion bench behind Figure 3 (future mappability): committing the
//! current application and probing one future application, AH vs MH.

use criterion::{criterion_group, criterion_main, Criterion};
use incdes_bench::{build_base_system, current_application, future_application};
use incdes_mapping::{MhConfig, Strategy};
use incdes_synth::paper::dac2001_small;
use std::hint::black_box;

fn bench_fig3(c: &mut Criterion) {
    let preset = dac2001_small();
    let seed = preset.seeds[0];
    let size = preset.current_sizes[1];
    let app = current_application(&preset, size, seed);
    let fut = future_application(&preset, seed, 0);

    let mut group = c.benchmark_group("fig3_future");
    group.sample_size(10);
    for (name, strategy) in [
        ("commit-ah-probe", Strategy::AdHoc),
        (
            "commit-mh-probe",
            Strategy::MappingHeuristic(MhConfig {
                max_iterations: 8,
                ..MhConfig::default()
            }),
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut base = build_base_system(&preset, seed);
                base.system
                    .add_application(app.clone(), &base.future, &base.weights, &strategy)
                    .unwrap();
                let probe = base
                    .system
                    .probe_application(&fut, &base.future, &base.weights, &Strategy::AdHoc)
                    .unwrap();
                black_box(probe.feasible)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
