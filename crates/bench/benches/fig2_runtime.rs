//! Criterion bench behind Figure 2 (runtime): strategy execution time as
//! the current application grows — the scaling trend of the paper's
//! runtime figure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use incdes_bench::{build_base_system, current_application};
use incdes_mapping::{run_strategy, MappingContext, MhConfig, Strategy};
use incdes_model::time::hyperperiod;
use incdes_model::AppId;
use incdes_synth::paper::dac2001_small;
use std::hint::black_box;

fn bench_fig2(c: &mut Criterion) {
    let preset = dac2001_small();
    let seed = preset.seeds[0];
    let base = build_base_system(&preset, seed);
    let arch = base.system.arch().clone();

    let mut group = c.benchmark_group("fig2_runtime");
    group.sample_size(10);
    for &size in &preset.current_sizes {
        let app = current_application(&preset, size, seed);
        let mut periods = vec![base.system.horizon()];
        periods.extend(app.graphs.iter().map(|g| g.period));
        let horizon = hyperperiod(periods).unwrap();
        let frozen = base.system.table().replicate_to(&arch, horizon).unwrap();
        let ctx = MappingContext::new(
            &arch,
            AppId(base.system.app_count() as u32),
            &app,
            Some(&frozen),
            horizon,
            &base.future,
            &base.weights,
        );
        group.bench_with_input(BenchmarkId::new("ah", size), &size, |b, _| {
            b.iter(|| {
                black_box(
                    run_strategy(&ctx, &Strategy::AdHoc)
                        .unwrap()
                        .stats
                        .evaluations,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("mh", size), &size, |b, _| {
            let cfg = MhConfig {
                max_iterations: 8,
                ..MhConfig::default()
            };
            b.iter(|| {
                black_box(
                    run_strategy(&ctx, &Strategy::MappingHeuristic(cfg))
                        .unwrap()
                        .stats
                        .evaluations,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
