//! Micro-benchmarks of the substrates: list scheduling, slack extraction,
//! metric evaluation and bin packing. Not a paper figure — used to keep
//! the evaluation loop fast (every MH/SA step pays one schedule + one
//! metric evaluation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use incdes_bench::build_base_system;
use incdes_metrics::{evaluate, pack, FitPolicy, Weights};
use incdes_model::Time;
use incdes_sched::SlackProfile;
use incdes_synth::paper::dac2001_small;
use std::hint::black_box;

fn bench_substrate(c: &mut Criterion) {
    let preset = dac2001_small();
    let base = build_base_system(&preset, preset.seeds[0]);
    let arch = base.system.arch().clone();
    let table = base.system.table().clone();

    let mut group = c.benchmark_group("substrate");
    group.bench_function("slack_profile", |b| {
        b.iter(|| black_box(SlackProfile::from_table(&arch, &table)))
    });
    let slack = SlackProfile::from_table(&arch, &table);
    group.bench_function("objective_evaluate", |b| {
        b.iter(|| black_box(evaluate(&arch, &slack, &base.future, &Weights::default())))
    });
    for n in [50usize, 200, 800] {
        let items: Vec<Time> = (0..n).map(|i| Time::new(1 + (i as u64 % 13))).collect();
        let bins: Vec<Time> = (0..n / 2).map(|i| Time::new(5 + (i as u64 % 29))).collect();
        group.bench_with_input(BenchmarkId::new("binpack_best_fit", n), &n, |b, _| {
            b.iter(|| black_box(pack(&items, &bins, FitPolicy::BestFit)))
        });
    }
    group.bench_function("pe_timelines_rebuild", |b| {
        b.iter(|| black_box(table.pe_timelines(&arch)))
    });
    group.finish();
}

criterion_group!(benches, bench_substrate);
criterion_main!(benches);
