//! Criterion bench behind Figure 1 (quality): one full AH/MH/SA
//! comparison instance at the small preset.

use criterion::{criterion_group, criterion_main, Criterion};
use incdes_bench::{build_base_system, current_application};
use incdes_mapping::{run_strategy, MappingContext, MhConfig, SaConfig, Strategy};
use incdes_model::time::hyperperiod;
use incdes_model::AppId;
use incdes_synth::paper::dac2001_small;
use std::hint::black_box;

fn bench_fig1(c: &mut Criterion) {
    let preset = dac2001_small();
    let seed = preset.seeds[0];
    let base = build_base_system(&preset, seed);
    let arch = base.system.arch().clone();
    let size = preset.current_sizes[1];
    let app = current_application(&preset, size, seed);
    let mut periods = vec![base.system.horizon()];
    periods.extend(app.graphs.iter().map(|g| g.period));
    let horizon = hyperperiod(periods).unwrap();
    let frozen = base.system.table().replicate_to(&arch, horizon).unwrap();
    let ctx = MappingContext::new(
        &arch,
        AppId(base.system.app_count() as u32),
        &app,
        Some(&frozen),
        horizon,
        &base.future,
        &base.weights,
    );

    let mut group = c.benchmark_group("fig1_quality");
    group.sample_size(10);
    group.bench_function("ah", |b| {
        b.iter(|| {
            black_box(
                run_strategy(&ctx, &Strategy::AdHoc)
                    .unwrap()
                    .evaluation
                    .cost
                    .total,
            )
        })
    });
    group.bench_function("mh", |b| {
        let cfg = MhConfig {
            max_iterations: 12,
            ..MhConfig::default()
        };
        b.iter(|| {
            black_box(
                run_strategy(&ctx, &Strategy::MappingHeuristic(cfg))
                    .unwrap()
                    .evaluation
                    .cost
                    .total,
            )
        })
    });
    group.bench_function("sa", |b| {
        let cfg = SaConfig {
            max_evaluations: 150,
            ..SaConfig::quick()
        };
        b.iter(|| {
            black_box(
                run_strategy(&ctx, &Strategy::SimulatedAnnealing(cfg))
                    .unwrap()
                    .evaluation
                    .cost
                    .total,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
