//! The store-backed campaign runner: content-addressed caching,
//! cross-process sharding and shard-report merging.
//!
//! # Keying
//!
//! Every scenario is fingerprinted by the canonical JSON of everything
//! that determines its [`crate::report::ScenarioReport`]: the resolved
//! generator configuration, the future profile inputs, the full
//! lifecycle script, the invariant-checking flag and the grid point
//! (size, strategy *configuration*, seed, weight setting) — plus
//! [`CODE_EPOCH`] and the store's own format epoch. Two things are
//! deliberately **excluded**:
//!
//! * the campaign *name* — renaming a campaign must not invalidate it;
//! * the scenario *index* — it is positional, so a spec edit that
//!   reshapes the grid (say, dropping a size) still reuses every blob
//!   of the surviving grid points; the index is patched on load.
//!
//! An edited spec therefore re-runs only its delta, which is the
//! paper's incremental-design argument applied to the evaluation
//! pipeline itself.
//!
//! # Sharding
//!
//! [`Shard`] partitions scenarios deterministically by store key
//! (`key.shard_of(count)`), so the partition is stable under grid
//! reshapes and independent of scenario order. Shard reports are merged
//! with [`merge_reports`], which is order-independent and verifies the
//! union is exactly one contiguous campaign — the merged report is
//! byte-identical to an unsharded run's.

use crate::report::{CampaignReport, CampaignTotals, ScenarioReport};
use crate::runner::{prepare_env, run_scenarios, ScenarioFailure, ScenarioOutcome};
use crate::spec::{CampaignSpec, ScenarioKey, ScriptStep, SpecError, WeightSetting};
use incdes_mapping::{SearchParallelism, Strategy};
use incdes_obs::counters::{self, Counter};
use incdes_store::{FaultKind, Lookup, Store, StoreKey};
use incdes_synth::SynthConfig;
use serde::Serialize;
use std::fmt;
use std::time::Duration;

/// Version of the scenario *semantics* baked into every store key.
///
/// Bump this whenever executing the same spec may legitimately produce
/// different bytes — a schedule-table fix, a generator change, a new
/// report field — so stale blobs become unreachable instead of being
/// served as fresh results. (The store's own `FORMAT_EPOCH` covers the
/// blob layout; this covers the meaning of the payload.)
/// History: 2 — MH dedupes duplicate moves across widening rounds, so
/// `StepReport::evaluations` dropped for MH scenarios (PR 4).
pub const CODE_EPOCH: u32 = 2;

/// The canonical, serializable identity of one scenario. Field order is
/// fixed by this struct, so the fingerprint JSON is stable.
#[derive(Serialize)]
struct Fingerprint {
    code_epoch: u32,
    config: SynthConfig,
    future_processes: usize,
    demand_factor: f64,
    check_invariants: bool,
    /// The spec's [`SearchParallelism`] with `threads` normalized to 1
    /// and `batch_cutover` to 0: neither changes report bytes (the
    /// batch protocol reduces in candidate-index order whether the
    /// dispatch spawned threads or ran inline), but Sequential vs.
    /// Parallel does (different splice diagnostics, and the SA
    /// portfolio runs different chains), so mode / `sa_chains` /
    /// `sa_exchange_period` are part of the scenario's identity.
    parallelism: SearchParallelism,
    script: Vec<ScriptStep>,
    size: usize,
    strategy: Strategy,
    seed: u64,
    weights: WeightSetting,
}

/// Derives the store key of one scenario of a spec (resolves the base
/// configuration itself; the runner uses the already-resolved variant).
///
/// # Errors
///
/// [`SpecError`] when the base configuration does not resolve.
pub fn scenario_store_key(
    spec: &CampaignSpec,
    scenario: &ScenarioKey,
) -> Result<StoreKey, SpecError> {
    let cfg = spec.resolve_config()?;
    Ok(store_key_with(&cfg, spec, scenario))
}

/// [`scenario_store_key`] with the base configuration pre-resolved.
fn store_key_with(cfg: &SynthConfig, spec: &CampaignSpec, scenario: &ScenarioKey) -> StoreKey {
    let fingerprint = Fingerprint {
        code_epoch: CODE_EPOCH,
        config: cfg.clone(),
        future_processes: spec.future_processes,
        demand_factor: spec.demand_factor,
        check_invariants: spec.check_invariants,
        parallelism: match spec.parallelism {
            SearchParallelism::Sequential => SearchParallelism::Sequential,
            SearchParallelism::Parallel {
                sa_chains,
                sa_exchange_period,
                ..
            } => SearchParallelism::Parallel {
                threads: 1,
                batch_cutover: 0,
                sa_chains,
                sa_exchange_period,
            },
        },
        script: spec.script.clone(),
        size: scenario.size,
        strategy: scenario.strategy,
        seed: scenario.seed,
        weights: scenario.weights.clone(),
    };
    let canonical =
        serde_json::to_string(&fingerprint).expect("campaign fingerprints always serialize");
    StoreKey::of(canonical.as_bytes())
}

/// One shard of a cross-process campaign: `index` (1-based) of `count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    index: usize,
    count: usize,
}

impl Shard {
    /// Builds a shard selector; `index` is 1-based and must be within
    /// `1..=count`.
    ///
    /// # Errors
    ///
    /// A human-readable message for out-of-range values.
    pub fn new(index: usize, count: usize) -> Result<Shard, String> {
        if count == 0 {
            return Err("shard count must be at least 1".to_string());
        }
        if index == 0 || index > count {
            return Err(format!("shard index {index} out of range 1..={count}"));
        }
        Ok(Shard { index, count })
    }

    /// Parses the CLI spelling `I/N` (e.g. `2/4`).
    ///
    /// # Errors
    ///
    /// A human-readable message for malformed input.
    pub fn parse(s: &str) -> Result<Shard, String> {
        let (i, n) = s
            .split_once('/')
            .ok_or_else(|| format!("expected I/N (e.g. 2/4), got `{s}`"))?;
        let index: usize = i
            .trim()
            .parse()
            .map_err(|_| format!("bad shard index `{i}`"))?;
        let count: usize = n
            .trim()
            .parse()
            .map_err(|_| format!("bad shard count `{n}`"))?;
        Shard::new(index, count)
    }

    /// 1-based shard index.
    #[must_use]
    pub fn index(&self) -> usize {
        self.index
    }

    /// Total shard count.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Whether this shard owns the scenario with store key `key`.
    #[must_use]
    pub fn contains(&self, key: &StoreKey) -> bool {
        key.shard_of(self.count) == self.index - 1
    }
}

impl fmt::Display for Shard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// Cache accounting of one store-backed campaign run. Lives *next to*
/// the report, never inside it: a warm rerun must produce byte-identical
/// report JSON, so hit counts are surfaced on stderr / in-memory only.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Scenarios in the full campaign grid.
    pub scenarios: usize,
    /// Scenarios selected after shard filtering.
    pub selected: usize,
    /// Selected scenarios served from the store.
    pub hits: usize,
    /// Selected scenarios executed (cache miss or no store).
    pub executed: usize,
    /// Blobs found corrupt (truncated/hand-edited) and re-run.
    pub corrupt: usize,
    /// Store writes that failed even after retries (the campaign still
    /// completes — results are computed through, just not persisted).
    pub store_errors: usize,
    /// Transient store-write errors that were retried.
    pub store_retries: usize,
    /// Scenarios quarantined after panicking through their retry
    /// budget (absent from the report; see [`StoredCampaign::failures`]).
    pub failed: usize,
    /// Whether the run degraded to compute-through: at least one result
    /// could not be persisted, so a future rerun will re-execute it.
    /// Report bytes are unaffected.
    pub degraded: bool,
}

/// How a store-backed campaign should run.
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreOptions<'a> {
    /// Worker threads for executing cache misses (0 ⇒ 1).
    pub workers: usize,
    /// The persistent store to consult and fill; `None` disables
    /// caching entirely (every selected scenario executes, nothing is
    /// written) — the `--no-cache` behaviour.
    pub store: Option<&'a Store>,
    /// Run only the scenarios owned by this shard.
    pub shard: Option<Shard>,
}

/// A store-backed campaign run: the deterministic report plus the cache
/// accounting of how it was produced.
#[derive(Debug)]
pub struct StoredCampaign {
    /// The canonical report (or the shard's slice of it).
    pub report: CampaignReport,
    /// Cache accounting (in-memory only; see [`CacheStats`]).
    pub stats: CacheStats,
    /// Per-scenario observability profiles for the scenarios that
    /// *executed* this run (cache hits carry none — their work happened
    /// in some earlier process). Sorted by scenario index. Like
    /// [`CacheStats`], this lives beside the report, never inside it.
    pub profiles: Vec<ScenarioProfile>,
    /// Quarantined scenarios, sorted by index; empty means the report
    /// covers the whole selection.
    pub failures: Vec<ScenarioFailure>,
}

/// The observability slice of one executed scenario: deterministic
/// counters plus (when enabled) per-phase wall-clock aggregates.
#[derive(Debug, Clone)]
pub struct ScenarioProfile {
    /// Scenario index in the campaign grid.
    pub index: usize,
    /// Deterministic counter deltas for the scenario's work.
    pub counters: incdes_obs::counters::CounterSnapshot,
    /// Per-phase wall-clock aggregates (all zero unless phase timing
    /// was enabled).
    pub phases: incdes_obs::phase::PhaseSnapshot,
}

/// Attempts after the first a failing put gets when its error is
/// transient ([`FaultKind::is_transient`]).
const PUT_RETRIES: usize = 3;

/// Writes one scenario blob with bounded retry: transient errors
/// (`WouldBlock`/`Interrupted`/`TimedOut`) back off deterministically
/// (1 ms doubling per attempt) and try again; persistent errors and an
/// exhausted budget give up — the campaign computes through. Returns
/// whether the blob was persisted.
fn put_with_retry(store: &Store, key: &StoreKey, payload: &str, stats: &mut CacheStats) -> bool {
    let mut delay = Duration::from_millis(1);
    for attempt in 0..=PUT_RETRIES {
        match store.put(key, payload) {
            Ok(()) => return true,
            Err(e) if attempt < PUT_RETRIES && FaultKind::is_transient(e.kind()) => {
                counters::bump(Counter::StoreRetries);
                stats.store_retries += 1;
                std::thread::sleep(delay);
                delay *= 2;
            }
            Err(_) => break,
        }
    }
    counters::bump(Counter::StorePutFailures);
    false
}

/// Runs `spec` against a persistent store: scenarios whose blob is
/// present and intact are served from cache (byte-identically — their
/// reports round-trip through the blob), the rest execute over
/// `opts.workers` threads and are written back. With `opts.shard` set,
/// only that shard's scenarios appear in the report.
///
/// # Errors
///
/// [`SpecError`] when the spec is invalid. Store *read* problems are
/// never errors (corrupt blobs re-run, see [`CacheStats::corrupt`]);
/// store *write* failures retry transient errors with deterministic
/// backoff ([`CacheStats::store_retries`]) and then degrade to
/// compute-through ([`CacheStats::store_errors`],
/// [`CacheStats::degraded`]) without failing the campaign or changing
/// report bytes. Panicking scenarios are quarantined into
/// [`StoredCampaign::failures`], never aborts.
pub fn run_campaign_store(
    spec: &CampaignSpec,
    opts: &StoreOptions<'_>,
) -> Result<StoredCampaign, SpecError> {
    spec.validate()?;
    let env = prepare_env(spec)?;
    let keys = spec.scenarios();
    let mut stats = CacheStats {
        scenarios: keys.len(),
        ..CacheStats::default()
    };

    let mut cached: Vec<ScenarioReport> = Vec::new();
    let mut pending: Vec<(ScenarioKey, StoreKey)> = Vec::new();
    for key in keys {
        let store_key = store_key_with(&env.cfg, spec, &key);
        if let Some(shard) = &opts.shard {
            if !shard.contains(&store_key) {
                continue;
            }
        }
        stats.selected += 1;
        if let Some(store) = opts.store {
            match store.lookup(&store_key) {
                Lookup::Hit(payload) => {
                    match serde_json::from_str::<ScenarioReport>(&payload) {
                        Ok(mut report) => {
                            // The index is positional, not part of the
                            // fingerprint — patch it to this grid's.
                            report.index = key.index;
                            stats.hits += 1;
                            cached.push(report);
                            continue;
                        }
                        // Parses as text but not as a report: treat as
                        // corrupt (hand-edited), re-run and overwrite.
                        Err(_) => stats.corrupt += 1,
                    }
                }
                Lookup::Corrupt => stats.corrupt += 1,
                Lookup::Miss => {}
            }
        }
        pending.push((key, store_key));
    }

    stats.executed = pending.len();
    let scenario_keys: Vec<ScenarioKey> = pending.iter().map(|(k, _)| k.clone()).collect();
    let outcomes = run_scenarios(spec, &env, &scenario_keys, opts.workers.max(1));

    // Outcomes come back in arbitrary (worker) order; scenario indices
    // are unique, so a map recovers each one's store key in O(1).
    let store_keys: std::collections::HashMap<usize, StoreKey> =
        pending.iter().map(|(k, sk)| (k.index, *sk)).collect();
    let mut scenarios = cached;
    let mut profiles = Vec::with_capacity(outcomes.len());
    let mut failures = Vec::new();
    for outcome in &outcomes {
        let done = match outcome {
            ScenarioOutcome::Completed(done) => done,
            // Quarantined: nothing trustworthy to report or persist.
            ScenarioOutcome::Failed {
                key,
                panic_message,
                attempts,
            } => {
                stats.failed += 1;
                failures.push(ScenarioFailure {
                    index: key.index,
                    panic_message: panic_message.clone(),
                    attempts: *attempts,
                });
                continue;
            }
        };
        let report = done.report();
        if let Some(store) = opts.store {
            let store_key = store_keys[&done.key.index];
            let payload =
                serde_json::to_string(&report).expect("scenario reports always serialize");
            if !put_with_retry(store, &store_key, &payload, &mut stats) {
                stats.store_errors += 1;
                if !stats.degraded {
                    stats.degraded = true;
                    counters::bump(Counter::DegradedMode);
                }
            }
        }
        profiles.push(ScenarioProfile {
            index: done.key.index,
            counters: done.counters,
            phases: done.phases,
        });
        scenarios.push(report);
    }
    scenarios.sort_by_key(|s| s.index);
    profiles.sort_by_key(|p| p.index);
    failures.sort_by_key(|f| f.index);
    let totals = CampaignTotals::from_scenarios(&scenarios);
    Ok(StoredCampaign {
        report: CampaignReport {
            campaign: spec.name.clone(),
            scenarios,
            totals,
        },
        stats,
        profiles,
        failures,
    })
}

/// The store keys of *every* scenario of `spec` — the live set for
/// [`incdes_store::Store::gc`] after a campaign.
///
/// # Errors
///
/// [`SpecError`] when the base configuration does not resolve.
pub fn live_keys(spec: &CampaignSpec) -> Result<std::collections::BTreeSet<StoreKey>, SpecError> {
    let cfg = spec.resolve_config()?;
    Ok(spec
        .scenarios()
        .iter()
        .map(|k| store_key_with(&cfg, spec, k))
        .collect())
}

/// Why shard reports refused to merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// No reports given.
    Empty,
    /// Two parts name different campaigns.
    NameMismatch(String, String),
    /// Two parts carry the same scenario index.
    DuplicateIndex(usize),
    /// The union is not the contiguous range `0..n` — a shard is
    /// missing.
    MissingIndex(usize),
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::Empty => write!(f, "no shard reports to merge"),
            MergeError::NameMismatch(a, b) => {
                write!(f, "shard reports name different campaigns: `{a}` vs `{b}`")
            }
            MergeError::DuplicateIndex(i) => {
                write!(
                    f,
                    "scenario index {i} appears in more than one shard report"
                )
            }
            MergeError::MissingIndex(i) => write!(
                f,
                "scenario index {i} is missing — not all shards were merged"
            ),
        }
    }
}

impl std::error::Error for MergeError {}

/// Joins shard reports into the one canonical [`CampaignReport`]:
/// order-independent (scenarios are re-sorted by index), totals are
/// recomputed, and the union must be exactly the contiguous campaign —
/// duplicates and gaps are errors. The result is byte-identical to the
/// report of an unsharded run of the same spec.
///
/// # Errors
///
/// [`MergeError`] on empty input, campaign-name mismatches, duplicate
/// scenario indices or missing shards.
pub fn merge_reports(parts: Vec<CampaignReport>) -> Result<CampaignReport, MergeError> {
    let mut parts = parts.into_iter();
    let first = parts.next().ok_or(MergeError::Empty)?;
    let campaign = first.campaign.clone();
    let mut scenarios = first.scenarios;
    for part in parts {
        if part.campaign != campaign {
            return Err(MergeError::NameMismatch(campaign, part.campaign));
        }
        scenarios.extend(part.scenarios);
    }
    scenarios.sort_by_key(|s| s.index);
    for (position, scenario) in scenarios.iter().enumerate() {
        if scenario.index < position {
            return Err(MergeError::DuplicateIndex(scenario.index));
        }
        if scenario.index > position {
            return Err(MergeError::MissingIndex(position));
        }
    }
    let totals = CampaignTotals::from_scenarios(&scenarios);
    Ok(CampaignReport {
        campaign,
        scenarios,
        totals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> CampaignSpec {
        let mut spec = CampaignSpec::small_demo();
        spec.sizes = vec![5];
        spec.seeds = vec![3];
        spec.strategies = vec![Strategy::AdHoc];
        spec
    }

    #[test]
    fn fingerprints_ignore_name_and_index_but_track_inputs() {
        let spec = CampaignSpec::small_demo();
        let keys = spec.scenarios();
        let a = scenario_store_key(&spec, &keys[0]).unwrap();

        // Renaming the campaign keeps every key.
        let mut renamed = spec.clone();
        renamed.name = "renamed".to_string();
        assert_eq!(
            a,
            scenario_store_key(&renamed, &renamed.scenarios()[0]).unwrap()
        );

        // A different index at the same grid point keeps the key.
        let mut moved = keys[0].clone();
        moved.index = 99;
        assert_eq!(a, scenario_store_key(&spec, &moved).unwrap());

        // Changing the seed, the script or the config changes the key.
        let mut reseeded = keys[0].clone();
        reseeded.seed ^= 1;
        assert_ne!(a, scenario_store_key(&spec, &reseeded).unwrap());
        let mut edited = spec.clone();
        edited.script.pop();
        assert_ne!(a, scenario_store_key(&edited, &keys[0]).unwrap());
        let mut demanding = spec.clone();
        demanding.demand_factor += 0.5;
        assert_ne!(a, scenario_store_key(&demanding, &keys[0]).unwrap());
    }

    #[test]
    fn fingerprints_normalize_execution_only_parallelism_knobs() {
        use incdes_mapping::SearchParallelism;
        let mut spec = CampaignSpec::small_demo();
        spec.parallelism = SearchParallelism::Parallel {
            threads: 1,
            batch_cutover: 0,
            sa_chains: 2,
            sa_exchange_period: 16,
        };
        let key = spec.scenarios()[0].clone();
        let a = scenario_store_key(&spec, &key).unwrap();

        // `threads` and `batch_cutover` multiplex execution only; the
        // report bytes (and therefore the store key) must not move.
        let mut retuned = spec.clone();
        retuned.parallelism = SearchParallelism::Parallel {
            threads: 8,
            batch_cutover: usize::MAX,
            sa_chains: 2,
            sa_exchange_period: 16,
        };
        assert_eq!(a, scenario_store_key(&retuned, &key).unwrap());

        // The SA-portfolio knobs and the mode change the trajectory,
        // so they change the key.
        let mut rechained = spec.clone();
        rechained.parallelism = SearchParallelism::Parallel {
            threads: 1,
            batch_cutover: 0,
            sa_chains: 3,
            sa_exchange_period: 16,
        };
        assert_ne!(a, scenario_store_key(&rechained, &key).unwrap());
        let mut sequential = spec.clone();
        sequential.parallelism = SearchParallelism::Sequential;
        assert_ne!(a, scenario_store_key(&sequential, &key).unwrap());
    }

    #[test]
    fn shard_parse_and_partition() {
        assert_eq!(Shard::parse("2/4"), Ok(Shard::new(2, 4).unwrap()));
        assert!(Shard::parse("0/4").is_err());
        assert!(Shard::parse("5/4").is_err());
        assert!(Shard::parse("x/4").is_err());
        assert!(Shard::parse("14").is_err());

        // Every scenario belongs to exactly one shard.
        let spec = CampaignSpec::small_demo();
        for key in spec.scenarios() {
            let sk = scenario_store_key(&spec, &key).unwrap();
            let owners = (1..=4)
                .filter(|&i| Shard::new(i, 4).unwrap().contains(&sk))
                .count();
            assert_eq!(owners, 1);
        }
    }

    #[test]
    fn storeless_run_matches_plain_runner() {
        let spec = tiny_spec();
        let stored = run_campaign_store(&spec, &StoreOptions::default()).unwrap();
        let plain = crate::runner::run_campaign(&spec, 1).unwrap().report();
        assert_eq!(stored.report, plain);
        assert_eq!(stored.stats.hits, 0);
        assert_eq!(stored.stats.executed, 1);
        assert_eq!(stored.stats.selected, 1);
    }

    #[test]
    fn merge_rejects_duplicates_gaps_and_mismatches() {
        let spec = tiny_spec();
        let report = crate::runner::run_campaign(&spec, 1).unwrap().report();
        assert_eq!(merge_reports(vec![]).unwrap_err(), MergeError::Empty);
        assert_eq!(
            merge_reports(vec![report.clone(), report.clone()]).unwrap_err(),
            MergeError::DuplicateIndex(0)
        );
        let mut renamed = report.clone();
        renamed.campaign = "other".to_string();
        assert!(matches!(
            merge_reports(vec![report.clone(), renamed]).unwrap_err(),
            MergeError::NameMismatch(_, _)
        ));
        let mut gapped = report.clone();
        gapped.scenarios[0].index = 1;
        assert_eq!(
            merge_reports(vec![gapped]).unwrap_err(),
            MergeError::MissingIndex(0)
        );
        // The identity merge reproduces the report exactly.
        assert_eq!(merge_reports(vec![report.clone()]).unwrap(), report);
    }
}
