//! The deterministic, multi-threaded campaign runner.
//!
//! Scenarios are independent: each one builds its own session from the
//! spec's generator configuration and walks the lifecycle script with a
//! private `ChaCha8` RNG seeded from the scenario's seed — never from
//! anything shared. Workers pull scenario indices from an atomic
//! counter, so the *schedule* of work varies with the worker count but
//! the *result* of every scenario does not; outcomes are re-ordered by
//! scenario index before reporting. That is the determinism guarantee:
//! `run_campaign(spec, 1)` and `run_campaign(spec, n)` produce
//! byte-identical reports.

use crate::report::{CampaignReport, CampaignTotals, ScenarioReport, ScheduleReport, StepReport};
use crate::spec::{CampaignSpec, Count, ScenarioKey, ScriptStep, SpecError};
use incdes_core::{CoreError, System};
use incdes_mapping::{MapError, SaConfig, Strategy};
use incdes_metrics::DesignCost;
use incdes_model::{AppId, Architecture, FutureProfile, Time};
use incdes_obs::counters::{self, Counter, CounterSnapshot};
use incdes_obs::phase::{self, PhaseSnapshot};
use incdes_synth::{
    future_profile_for, future_wcet_range, generate_application, generate_architecture, SynthConfig,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// What a script step did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepAction {
    /// An `add_application` commit attempt.
    Add,
    /// A `probe_application` feasibility check.
    Probe,
    /// A `decommission` of a committed application.
    Decommission,
    /// A deliberate `InjectPanic` chaos step.
    InjectPanic,
}

impl StepAction {
    /// The report spelling of the action.
    pub fn as_str(&self) -> &'static str {
        match self {
            StepAction::Add => "add",
            StepAction::Probe => "probe",
            StepAction::Decommission => "decommission",
            StepAction::InjectPanic => "inject_panic",
        }
    }
}

/// In-memory result of one script step (the serializable subset lives
/// in [`StepReport`]; wall-clock timing stays here).
#[derive(Debug, Clone)]
pub struct StepOutcome {
    /// Step index in the script.
    pub step: usize,
    /// What the step did.
    pub action: StepAction,
    /// Whether it succeeded.
    pub feasible: bool,
    /// Id assigned by a successful add.
    pub app_id: Option<u32>,
    /// Objective value of the chosen design alternative (add/probe).
    pub cost: Option<DesignCost>,
    /// Schedule evaluations the strategy spent.
    pub evaluations: usize,
    /// Strategy iterations.
    pub iterations: usize,
    /// Raw schedules the strategy's evaluations served via the delta
    /// path (record splicing).
    pub delta_schedules: usize,
    /// Placement steps spliced from run records instead of re-placed.
    pub spliced_steps: usize,
    /// System horizon in ticks after the step.
    pub horizon: u64,
    /// Error message for failed steps; plain infeasibility carries none.
    pub error: Option<String>,
    /// Wall-clock time of the step (not serialized — nondeterministic).
    pub elapsed: Duration,
}

/// In-memory result of one *completed* scenario.
#[derive(Debug, Clone)]
pub struct CompletedScenario {
    /// The grid point this scenario ran.
    pub key: ScenarioKey,
    /// Step results in script order.
    pub steps: Vec<StepOutcome>,
    /// Snapshot of the final schedule.
    pub schedule: ScheduleReport,
    /// Scheduling-invariant violations found after mutating steps.
    pub invariant_violations: Vec<String>,
    /// Wall-clock time of the whole scenario.
    pub elapsed: Duration,
    /// Observability counters this scenario's work contributed (a
    /// scenario runs on one thread, so a before/after delta is exact).
    /// Diagnostics only — never serialized into the campaign report.
    pub counters: CounterSnapshot,
    /// Per-phase wall-clock aggregates of the same span (all zero
    /// unless phase timing is enabled).
    pub phases: PhaseSnapshot,
}

impl CompletedScenario {
    /// The deterministic, serializable view of this scenario (the blob
    /// the campaign store persists — wall-clock timings stay here).
    #[must_use]
    pub fn report(&self) -> ScenarioReport {
        ScenarioReport {
            index: self.key.index,
            size: self.key.size,
            strategy: self.key.strategy.name().to_string(),
            seed: self.key.seed,
            weights: self.key.weights.label.clone(),
            steps: self
                .steps
                .iter()
                .map(|s| StepReport {
                    step: s.step,
                    action: s.action.as_str().to_string(),
                    feasible: s.feasible,
                    app_id: s.app_id,
                    cost: s.cost.map(Into::into),
                    evaluations: s.evaluations,
                    iterations: s.iterations,
                    delta_schedules: s.delta_schedules,
                    spliced_steps: s.spliced_steps,
                    horizon: s.horizon,
                    error: s.error.clone(),
                })
                .collect(),
            schedule: self.schedule.clone(),
            invariant_violations: self.invariant_violations.clone(),
        }
    }
}

/// One scenario's result: a completed trace, or a quarantined panic.
///
/// A panicking scenario never takes the campaign down — every attempt
/// runs under `catch_unwind` on its worker, retries restart from the
/// scenario's own seed (a fresh RNG stream, so a completed retry is
/// byte-identical to a first-attempt success), and exhausted retries
/// quarantine the scenario as [`ScenarioOutcome::Failed`] while its
/// siblings keep running.
#[derive(Debug, Clone)]
pub enum ScenarioOutcome {
    /// The scenario ran to completion (possibly after retries).
    Completed(CompletedScenario),
    /// Every attempt panicked; the campaign continues without it.
    Failed {
        /// The grid point that failed.
        key: ScenarioKey,
        /// Panic payload of the final attempt, prefixed with the
        /// scenario identity (`scenario #<index>: ...`).
        panic_message: String,
        /// Attempts spent (1 + retries).
        attempts: usize,
    },
}

impl ScenarioOutcome {
    /// The grid point this outcome belongs to.
    #[must_use]
    pub fn key(&self) -> &ScenarioKey {
        match self {
            ScenarioOutcome::Completed(done) => &done.key,
            ScenarioOutcome::Failed { key, .. } => key,
        }
    }

    /// The completed trace, when there is one.
    #[must_use]
    pub fn completed(&self) -> Option<&CompletedScenario> {
        match self {
            ScenarioOutcome::Completed(done) => Some(done),
            ScenarioOutcome::Failed { .. } => None,
        }
    }

    /// The completed trace, panicking with the quarantined scenario's
    /// own failure message otherwise. For tests and callers that have
    /// already established the campaign is failure-free.
    ///
    /// # Panics
    ///
    /// When the scenario failed.
    #[must_use]
    pub fn expect_completed(&self) -> &CompletedScenario {
        match self {
            ScenarioOutcome::Completed(done) => done,
            ScenarioOutcome::Failed { panic_message, .. } => {
                panic!("scenario was quarantined: {panic_message}")
            }
        }
    }

    /// The serializable scenario report; `None` for quarantined
    /// scenarios (they have no trustworthy trace to persist).
    #[must_use]
    pub fn report(&self) -> Option<ScenarioReport> {
        self.completed().map(CompletedScenario::report)
    }
}

/// The surfaced summary of one quarantined scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioFailure {
    /// Scenario index in the spec grid.
    pub index: usize,
    /// Panic message of the final attempt (names the scenario).
    pub panic_message: String,
    /// Attempts spent before quarantining.
    pub attempts: usize,
}

/// A completed campaign: every scenario's outcome, in spec order.
#[derive(Debug)]
pub struct CampaignRun {
    /// Campaign name from the spec.
    pub name: String,
    /// Scenario outcomes, sorted by scenario index.
    pub outcomes: Vec<ScenarioOutcome>,
}

impl CampaignRun {
    /// Builds the deterministic, serializable report of this run.
    /// Quarantined scenarios are absent from it — a partial report is
    /// still byte-exact about everything that did complete.
    pub fn report(&self) -> CampaignReport {
        let scenarios: Vec<ScenarioReport> = self
            .outcomes
            .iter()
            .filter_map(ScenarioOutcome::report)
            .collect();
        let totals = CampaignTotals::from_scenarios(&scenarios);
        CampaignReport {
            campaign: self.name.clone(),
            scenarios,
            totals,
        }
    }

    /// The completed scenarios, in spec order.
    pub fn completed(&self) -> impl Iterator<Item = &CompletedScenario> {
        self.outcomes.iter().filter_map(ScenarioOutcome::completed)
    }

    /// Summaries of every quarantined scenario, in spec order; empty
    /// means the campaign is whole.
    #[must_use]
    pub fn failures(&self) -> Vec<ScenarioFailure> {
        self.outcomes
            .iter()
            .filter_map(|outcome| match outcome {
                ScenarioOutcome::Completed(_) => None,
                ScenarioOutcome::Failed {
                    key,
                    panic_message,
                    attempts,
                } => Some(ScenarioFailure {
                    index: key.index,
                    panic_message: panic_message.clone(),
                    attempts: *attempts,
                }),
            })
            .collect()
    }
}

/// Everything scenario execution needs that is shared across the whole
/// campaign: the resolved generator configuration, its future-WCET
/// variant, the architecture and the demand-scaled future profile. All
/// of it is a pure function of the spec.
pub(crate) struct CampaignEnv {
    pub(crate) cfg: SynthConfig,
    pub(crate) future_cfg: SynthConfig,
    pub(crate) arch: Architecture,
    pub(crate) future: FutureProfile,
}

/// Resolves the shared campaign environment of a *validated* spec.
pub(crate) fn prepare_env(spec: &CampaignSpec) -> Result<CampaignEnv, SpecError> {
    let cfg = spec.resolve_config()?;
    let arch = generate_architecture(&cfg)?;
    let future_cfg = SynthConfig {
        wcet: future_wcet_range(&cfg),
        ..cfg.clone()
    };
    let mut future = future_profile_for(&cfg, spec.future_processes);
    future.t_need = Time::new((future.t_need.as_f64() * spec.demand_factor).round() as u64);
    future.b_need = Time::new((future.b_need.as_f64() * spec.demand_factor).round() as u64);
    Ok(CampaignEnv {
        cfg,
        future_cfg,
        arch,
        future,
    })
}

/// Runs every scenario of `spec` over `workers` OS threads and returns
/// the outcomes in deterministic (spec) order.
///
/// The worker count only changes wall-clock time, never the result —
/// see the module docs for why.
///
/// # Errors
///
/// [`SpecError`] when the spec itself is invalid; failures *inside* a
/// scenario — infeasible commits, bad decommission indices, even
/// panics — are recorded in its outcome instead (see
/// [`ScenarioOutcome`]). Check [`CampaignRun::failures`] for
/// quarantined scenarios.
pub fn run_campaign(spec: &CampaignSpec, workers: usize) -> Result<CampaignRun, SpecError> {
    spec.validate()?;
    let env = prepare_env(spec)?;
    let keys = spec.scenarios();
    let mut outcomes = run_scenarios(spec, &env, &keys, workers);
    outcomes.sort_by_key(|o| o.key().index);
    Ok(CampaignRun {
        name: spec.name.clone(),
        outcomes,
    })
}

/// How many times a panicked scenario is re-attempted before being
/// quarantined: `INCDES_SCENARIO_RETRIES` when set (validated through
/// `incdes_obs::diag::env_usize`), 1 otherwise.
fn scenario_retry_budget() -> usize {
    incdes_obs::diag::env_usize(
        "INCDES_SCENARIO_RETRIES",
        "re-attempts per panicked scenario",
    )
    .unwrap_or(1)
}

/// Executes the given scenarios over a pool of `workers` threads and
/// returns their outcomes in arbitrary order. Shared by the plain and
/// the store-backed runner.
///
/// Each worker accumulates outcomes in a thread-local vector handed
/// back through its join handle — there is no shared mutex to poison —
/// and every scenario runs isolated under [`run_scenario_isolated`], so
/// one panicking scenario can never take a sibling (or the campaign)
/// down.
pub(crate) fn run_scenarios(
    spec: &CampaignSpec,
    env: &CampaignEnv,
    keys: &[ScenarioKey],
    workers: usize,
) -> Vec<ScenarioOutcome> {
    let scenario_count = keys.len();
    let workers = workers.clamp(1, scenario_count.max(1));
    let next = AtomicUsize::new(0);
    let harvested = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= scenario_count {
                            break;
                        }
                        local.push(run_scenario_isolated(spec, env, &keys[i]));
                    }
                    // Fresh OS thread: its observability thread-locals
                    // started at zero, so the final snapshot is this
                    // worker's contribution to the process totals.
                    (local, counters::snapshot(), phase::snapshot())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .expect("scenario workers cannot panic: scenarios are unwind-isolated")
            })
            .collect::<Vec<_>>()
    });
    let mut outcomes = Vec::with_capacity(scenario_count);
    for (local, worker_counters, worker_phases) in harvested {
        outcomes.extend(local);
        counters::merge_into_current(&worker_counters);
        phase::merge_into_current(&worker_phases);
    }
    outcomes
}

/// Renders a panic payload as text (the common `&str`/`String` cases,
/// a placeholder otherwise).
fn panic_text(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// Runs one scenario with unwind isolation and a bounded retry budget.
///
/// Every attempt restarts the scenario from scratch — the RNG stream is
/// re-derived from the scenario's seed, so a retry that completes is
/// byte-identical to a first-attempt success (retries help against
/// environmental or attempt-dependent panics, never change results).
/// The last attempt's panic message, prefixed with the scenario index,
/// is quarantined into [`ScenarioOutcome::Failed`].
pub(crate) fn run_scenario_isolated(
    spec: &CampaignSpec,
    env: &CampaignEnv,
    key: &ScenarioKey,
) -> ScenarioOutcome {
    let attempts_allowed = 1 + scenario_retry_budget();
    let mut last_panic = String::new();
    for attempt in 1..=attempts_allowed {
        if attempt > 1 {
            counters::bump(Counter::ScenarioRetries);
        }
        match std::panic::catch_unwind(AssertUnwindSafe(|| run_scenario(spec, env, key, attempt))) {
            Ok(outcome) => return ScenarioOutcome::Completed(outcome),
            Err(payload) => {
                counters::bump(Counter::ScenarioPanics);
                last_panic = format!("scenario #{}: {}", key.index, panic_text(payload.as_ref()));
            }
        }
    }
    ScenarioOutcome::Failed {
        key: key.clone(),
        panic_message: last_panic,
        attempts: attempts_allowed,
    }
}

/// The scenario's strategy with SA reseeded from the scenario seed, so
/// the seed axis drives the annealer too (and stays deterministic).
fn effective_strategy(base: &Strategy, scenario_seed: u64) -> Strategy {
    match base {
        Strategy::SimulatedAnnealing(cfg) => Strategy::SimulatedAnnealing(SaConfig {
            seed: cfg.seed ^ scenario_seed.rotate_left(17),
            ..*cfg
        }),
        other => *other,
    }
}

fn resolve_count(count: Count, size: usize) -> usize {
    match count {
        Count::Fixed(n) => n,
        Count::Size => size,
    }
}

/// The shared front half of `Add` and `Probe` steps: draws the step's
/// application from the scenario RNG (current or future configuration)
/// and resolves the effective strategy. Both step kinds **must** go
/// through this one path — it defines how the deterministic generation
/// stream advances.
#[allow(clippy::too_many_arguments)]
fn generate_step_app(
    cfg: &SynthConfig,
    future_cfg: &SynthConfig,
    key: &ScenarioKey,
    index: usize,
    processes: Count,
    strategy_override: &Option<Strategy>,
    from_future: bool,
    rng: &mut ChaCha8Rng,
) -> Result<(incdes_model::Application, Strategy), String> {
    let n = resolve_count(processes, key.size);
    let gen_cfg = if from_future { future_cfg } else { cfg };
    let app =
        generate_application(gen_cfg, &format!("s{index}"), n, rng).map_err(|e| e.to_string())?;
    let strategy = effective_strategy(
        strategy_override.as_ref().unwrap_or(&key.strategy),
        key.seed,
    );
    Ok((app, strategy))
}

/// Validates every scheduling invariant of the current schedule against
/// the still-active applications.
fn invariant_violation(system: &System) -> Option<String> {
    let pairs: Vec<_> = system
        .active()
        .map(|c| (c.id, &c.app, &c.solution.mapping))
        .collect();
    system
        .table()
        .validate(system.arch(), &pairs)
        .err()
        .map(|e| e.to_string())
}

pub(crate) fn run_scenario(
    spec: &CampaignSpec,
    env: &CampaignEnv,
    key: &ScenarioKey,
    attempt: usize,
) -> CompletedScenario {
    let CampaignEnv {
        cfg,
        future_cfg,
        arch,
        future,
    } = env;
    let scenario_start = Instant::now();
    let counters_before = counters::snapshot();
    let phases_before = phase::snapshot();
    let mut rng = ChaCha8Rng::seed_from_u64(key.seed);
    let mut system = System::new(arch.clone());
    system.set_parallelism(spec.parallelism);
    let weights = key.weights.weights;
    let mut steps = Vec::with_capacity(spec.script.len());
    let mut invariant_violations = Vec::new();

    for (index, step) in spec.script.iter().enumerate() {
        let step_start = Instant::now();
        let mut outcome = StepOutcome {
            step: index,
            action: StepAction::Add,
            feasible: false,
            app_id: None,
            cost: None,
            evaluations: 0,
            iterations: 0,
            delta_schedules: 0,
            spliced_steps: 0,
            horizon: 0,
            error: None,
            elapsed: Duration::ZERO,
        };
        let mutating = match step {
            ScriptStep::Add {
                processes,
                strategy,
                future: from_future,
            } => {
                outcome.action = StepAction::Add;
                match generate_step_app(
                    cfg,
                    future_cfg,
                    key,
                    index,
                    *processes,
                    strategy,
                    *from_future,
                    &mut rng,
                ) {
                    Err(e) => outcome.error = Some(e),
                    Ok((app, strategy)) => {
                        match system.add_application(app, future, &weights, &strategy) {
                            Ok(report) => {
                                outcome.feasible = true;
                                outcome.app_id = Some(report.app_id.0);
                                outcome.cost = Some(report.cost);
                                outcome.evaluations = report.stats.evaluations;
                                outcome.iterations = report.stats.iterations;
                                outcome.delta_schedules = report.stats.delta_schedules;
                                outcome.spliced_steps = report.stats.spliced_steps;
                            }
                            Err(CoreError::Mapping(MapError::Infeasible { .. })) => {}
                            Err(e) => outcome.error = Some(e.to_string()),
                        }
                    }
                }
                true
            }
            ScriptStep::Probe {
                processes,
                strategy,
                future: from_future,
            } => {
                outcome.action = StepAction::Probe;
                match generate_step_app(
                    cfg,
                    future_cfg,
                    key,
                    index,
                    *processes,
                    strategy,
                    *from_future,
                    &mut rng,
                ) {
                    Err(e) => outcome.error = Some(e),
                    Ok((app, strategy)) => {
                        match system.probe_application(&app, future, &weights, &strategy) {
                            Ok(probe) => {
                                outcome.feasible = probe.feasible;
                                outcome.cost = probe.cost;
                                if let Some(stats) = probe.stats {
                                    outcome.evaluations = stats.evaluations;
                                    outcome.iterations = stats.iterations;
                                    outcome.delta_schedules = stats.delta_schedules;
                                    outcome.spliced_steps = stats.spliced_steps;
                                }
                            }
                            Err(e) => outcome.error = Some(e.to_string()),
                        }
                    }
                }
                false
            }
            ScriptStep::Decommission { app } => {
                outcome.action = StepAction::Decommission;
                match system.decommission(AppId(*app)) {
                    Ok(()) => outcome.feasible = true,
                    Err(e) => outcome.error = Some(e.to_string()),
                }
                true
            }
            ScriptStep::InjectPanic {
                fail_attempts,
                only_seed,
            } => {
                outcome.action = StepAction::InjectPanic;
                let targeted = only_seed.map_or(true, |seed| seed == key.seed);
                if targeted && attempt <= *fail_attempts {
                    panic!(
                        "injected panic at script step {index} \
                         (attempt {attempt}, fails through attempt {fail_attempts})"
                    );
                }
                outcome.feasible = true;
                false
            }
        };
        outcome.horizon = system.horizon().ticks();
        outcome.elapsed = step_start.elapsed();
        steps.push(outcome);
        if spec.check_invariants && mutating {
            if let Some(violation) = invariant_violation(&system) {
                invariant_violations.push(format!("step {index}: {violation}"));
            }
        }
    }

    CompletedScenario {
        key: key.clone(),
        steps,
        schedule: ScheduleReport::capture(&system),
        invariant_violations,
        elapsed: scenario_start.elapsed(),
        counters: counters::snapshot().delta_since(&counters_before),
        phases: phase::snapshot().delta_since(&phases_before),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{BaseSpec, WeightSetting};
    use incdes_metrics::Weights;

    fn tiny_spec() -> CampaignSpec {
        let mut spec = CampaignSpec::small_demo();
        spec.sizes = vec![5];
        spec.seeds = vec![3];
        spec.strategies = vec![Strategy::AdHoc];
        spec
    }

    #[test]
    fn single_scenario_campaign_runs() {
        let run = run_campaign(&tiny_spec(), 1).unwrap();
        assert_eq!(run.outcomes.len(), 1);
        assert!(run.failures().is_empty());
        let outcome = run.outcomes[0].expect_completed();
        assert_eq!(outcome.steps.len(), 6);
        assert!(outcome.invariant_violations.is_empty());
        assert!(
            outcome.steps.iter().all(|s| s.feasible),
            "demo steps all fit"
        );
        // The decommission retired app 0.
        assert_eq!(outcome.schedule.committed_apps, 4);
        assert_eq!(outcome.schedule.active_apps, 3);
        assert!(outcome.schedule.jobs > 0);
    }

    /// Probe-heavy scripts (the paper's mappability experiment) now
    /// share one baked `FrozenBase` per system state through
    /// `incdes_core::System`, and every per-step context runs the
    /// delta-scheduling path by default — the determinism guarantee
    /// (byte-identical reports across runs and worker counts) must be
    /// completely unaffected by either cache.
    #[test]
    fn probe_heavy_script_is_deterministic_with_shared_bases() {
        let mut spec = tiny_spec();
        spec.strategies = vec![Strategy::mh(), Strategy::sa()];
        spec.script = vec![
            ScriptStep::Add {
                processes: Count::Fixed(5),
                strategy: None,
                future: false,
            },
            ScriptStep::Probe {
                processes: Count::Fixed(4),
                strategy: None,
                future: false,
            },
            ScriptStep::Probe {
                processes: Count::Fixed(4),
                strategy: None,
                future: true,
            },
            ScriptStep::Probe {
                processes: Count::Fixed(6),
                strategy: None,
                future: false,
            },
            ScriptStep::Add {
                processes: Count::Fixed(4),
                strategy: None,
                future: false,
            },
            ScriptStep::Probe {
                processes: Count::Fixed(4),
                strategy: None,
                future: true,
            },
        ];
        let a = run_campaign(&spec, 1).unwrap().report();
        let b = run_campaign(&spec, 4).unwrap().report();
        assert_eq!(
            a.to_json_pretty().unwrap(),
            b.to_json_pretty().unwrap(),
            "worker count must not perturb probe-heavy campaigns"
        );
        for outcome in run_campaign(&spec, 2).unwrap().completed() {
            assert!(outcome.invariant_violations.is_empty());
        }
    }

    #[test]
    fn bad_decommission_is_recorded_not_fatal() {
        let mut spec = tiny_spec();
        spec.script = vec![
            ScriptStep::Add {
                processes: Count::Fixed(4),
                strategy: None,
                future: false,
            },
            ScriptStep::Decommission { app: 9 },
        ];
        let run = run_campaign(&spec, 1).unwrap();
        let step = &run.outcomes[0].expect_completed().steps[1];
        assert!(!step.feasible);
        assert!(step
            .error
            .as_deref()
            .unwrap()
            .contains("no active application"));
    }

    #[test]
    fn weight_axis_changes_cost_not_structure() {
        let mut spec = tiny_spec();
        spec.strategies = vec![Strategy::mh()];
        spec.weight_settings = vec![
            WeightSetting {
                label: "balanced".into(),
                weights: Weights::default(),
            },
            WeightSetting {
                label: "packing-only".into(),
                weights: Weights {
                    w2_processes: 0.0,
                    w2_messages: 0.0,
                    ..Weights::default()
                },
            },
        ];
        let run = run_campaign(&spec, 2).unwrap();
        assert_eq!(run.outcomes.len(), 2);
        // Same seed, same generator stream: both scenarios commit the
        // same number of jobs even though the objective differs.
        assert_eq!(
            run.outcomes[0].expect_completed().schedule.jobs,
            run.outcomes[1].expect_completed().schedule.jobs
        );
    }

    #[test]
    fn sa_is_reseeded_per_scenario_seed() {
        let sa = Strategy::sa();
        let a = effective_strategy(&sa, 1);
        let b = effective_strategy(&sa, 2);
        let (Strategy::SimulatedAnnealing(ca), Strategy::SimulatedAnnealing(cb)) = (a, b) else {
            panic!("SA stays SA");
        };
        assert_ne!(ca.seed, cb.seed);
        // And deterministic.
        let (Strategy::SimulatedAnnealing(ca2),) = (effective_strategy(&sa, 1),) else {
            unreachable!()
        };
        assert_eq!(ca.seed, ca2.seed);
    }

    #[test]
    fn preset_base_resolves_and_runs() {
        let spec = CampaignSpec {
            name: "preset-smoke".into(),
            base: BaseSpec::Preset("dac2001-small".into()),
            future_processes: 10,
            demand_factor: 1.0,
            sizes: Vec::new(),
            strategies: vec![Strategy::AdHoc],
            seeds: vec![5],
            weight_settings: Vec::new(),
            script: vec![ScriptStep::Add {
                processes: Count::Fixed(10),
                strategy: None,
                future: false,
            }],
            check_invariants: true,
            parallelism: Default::default(),
        };
        let run = run_campaign(&spec, 1).unwrap();
        let outcome = run.outcomes[0].expect_completed();
        assert!(outcome.steps[0].feasible);
        assert!(outcome.invariant_violations.is_empty());
    }

    /// Satellite: a panicking scenario must be quarantined under its own
    /// index while every sibling completes — no campaign abort, no
    /// poisoned-lock collateral.
    #[test]
    fn panicking_scenario_is_quarantined_and_siblings_survive() {
        let mut spec = tiny_spec();
        spec.seeds = vec![1, 2, 3, 4];
        spec.script = vec![
            ScriptStep::Add {
                processes: Count::Fixed(4),
                strategy: None,
                future: false,
            },
            ScriptStep::InjectPanic {
                fail_attempts: usize::MAX,
                only_seed: Some(3),
            },
        ];
        let run = run_campaign(&spec, 4).expect("spec is valid");
        assert_eq!(run.outcomes.len(), 4, "every scenario has an outcome");
        let failures = run.failures();
        assert_eq!(failures.len(), 1, "exactly the poisoned scenario failed");
        let poisoned_index = spec
            .scenarios()
            .iter()
            .find(|k| k.seed == 3)
            .expect("seed 3 is on the grid")
            .index;
        assert_eq!(failures[0].index, poisoned_index);
        assert!(
            failures[0]
                .panic_message
                .contains(&format!("scenario #{poisoned_index}")),
            "panic identity names the scenario: {}",
            failures[0].panic_message
        );
        assert!(failures[0].attempts >= 2, "the default budget retries once");
        assert_eq!(run.completed().count(), 3);
        // The report carries exactly the completed scenarios.
        assert_eq!(run.report().scenarios.len(), 3);
    }

    /// A panic on the first attempt only: the retry restarts from the
    /// scenario seed and must reproduce a clean run's bytes exactly.
    #[test]
    fn retried_scenario_reproduces_clean_bytes() {
        let mut spec = tiny_spec();
        spec.seeds = vec![1, 2];
        spec.script = vec![
            ScriptStep::Add {
                processes: Count::Fixed(4),
                strategy: None,
                future: false,
            },
            ScriptStep::InjectPanic {
                fail_attempts: 1,
                only_seed: None,
            },
            ScriptStep::Probe {
                processes: Count::Fixed(4),
                strategy: None,
                future: false,
            },
        ];
        let mut clean_spec = spec.clone();
        clean_spec.script[1] = ScriptStep::InjectPanic {
            fail_attempts: 0,
            only_seed: None,
        };
        let flaky = run_campaign(&spec, 2).expect("spec is valid");
        assert!(flaky.failures().is_empty(), "one retry clears the panic");
        let clean = run_campaign(&clean_spec, 2).expect("spec is valid");
        assert_eq!(
            flaky.report().to_json_pretty().unwrap(),
            clean.report().to_json_pretty().unwrap(),
            "retried scenarios must be byte-identical to never-panicked ones"
        );
    }
}
