//! Campaign specifications: the serde-typed description of a scenario
//! sweep.
//!
//! A [`CampaignSpec`] is a grid: a base generator configuration
//! ([`BaseSpec`]) crossed with application **sizes**, mapping
//! **strategies**, RNG **seeds** and objective **weight settings**, all
//! driven through one incremental lifecycle **script** of
//! [`ScriptStep`]s. Every grid point is one *scenario*; the runner in
//! [`crate::runner`] executes scenarios independently (and in parallel)
//! with a per-scenario `ChaCha8` RNG, so a spec plus its seeds fully
//! determines every byte of the campaign report.

use incdes_mapping::{SearchParallelism, Strategy};
use incdes_metrics::Weights;
use incdes_model::Time;
use incdes_synth::paper::{dac2001, dac2001_small};
use incdes_synth::{SynthConfig, SynthError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Where the campaign's generator configuration comes from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BaseSpec {
    /// An inline generator configuration.
    Config(SynthConfig),
    /// A named paper preset: `"dac2001"` or `"dac2001-small"` (the
    /// preset's `cfg` is used; its sweep axes are *not* inherited — the
    /// campaign's own axes apply).
    Preset(String),
}

/// How many processes a generated application has.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Count {
    /// A fixed process count.
    Fixed(usize),
    /// The scenario's value on the campaign's size axis.
    Size,
}

/// One step of the incremental lifecycle script.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScriptStep {
    /// Generate an application and commit it with
    /// [`incdes_core::System::add_application`].
    Add {
        /// Process count of the generated application.
        processes: Count,
        /// Strategy override; `None` uses the scenario's strategy.
        #[serde(default)]
        strategy: Option<Strategy>,
        /// Draw the application from the *future* variant of the base
        /// configuration (WCETs spanning
        /// [`incdes_synth::future_wcet_range`]).
        #[serde(default)]
        future: bool,
    },
    /// Generate an application and probe it with
    /// [`incdes_core::System::probe_application`] (no commit).
    Probe {
        /// Process count of the generated application.
        processes: Count,
        /// Strategy override; `None` uses the scenario's strategy.
        #[serde(default)]
        strategy: Option<Strategy>,
        /// Draw from the future configuration variant (see
        /// [`ScriptStep::Add::future`]).
        #[serde(default)]
        future: bool,
    },
    /// Decommission the application committed by the `app`-th commit
    /// (its [`incdes_model::AppId`]).
    Decommission {
        /// Index of the application to retire.
        app: u32,
    },
    /// Deterministic chaos step: panic inside the scenario on purpose.
    ///
    /// The fault-tolerance harness's poison pill — the runner isolates
    /// and retries panicking scenarios, and this step makes those paths
    /// reproducibly testable from a plain spec. Once the scenario's
    /// attempt number exceeds `fail_attempts` the step is a feasible
    /// no-op, so `fail_attempts: 0` never fires and a huge bound
    /// quarantines the scenario.
    InjectPanic {
        /// Panic while the attempt number (1-based) is ≤ this bound.
        #[serde(default)]
        fail_attempts: usize,
        /// Only panic in scenarios with this seed; `None` targets every
        /// scenario.
        #[serde(default)]
        only_seed: Option<u64>,
    },
}

/// A labelled objective-weight setting (one point on the weights axis).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightSetting {
    /// Short label used in reports.
    pub label: String,
    /// The objective weights.
    pub weights: Weights,
}

impl Default for WeightSetting {
    fn default() -> Self {
        WeightSetting {
            label: "default".to_string(),
            weights: Weights::default(),
        }
    }
}

/// A deterministic scenario campaign: the full grid plus the lifecycle
/// script every scenario executes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Campaign name (recorded in the report).
    pub name: String,
    /// Generator configuration source.
    pub base: BaseSpec,
    /// Process count of the future-application family the objective
    /// optimizes for.
    pub future_processes: usize,
    /// Scale factor on the future profile's `t_need`/`b_need`.
    pub demand_factor: f64,
    /// Size axis, consumed by [`Count::Size`] steps. Empty is allowed
    /// when no step uses [`Count::Size`] (a single degenerate size 0).
    #[serde(default)]
    pub sizes: Vec<usize>,
    /// Strategy axis.
    pub strategies: Vec<Strategy>,
    /// Seed axis (one deterministic system instance per seed).
    pub seeds: Vec<u64>,
    /// Objective-weight axis; empty means the default weights only.
    #[serde(default)]
    pub weight_settings: Vec<WeightSetting>,
    /// The lifecycle script every scenario executes.
    pub script: Vec<ScriptStep>,
    /// Re-validate every scheduling invariant after each mutating step
    /// (exhaustive, so meant for test-sized campaigns).
    #[serde(default)]
    pub check_invariants: bool,
    /// How MH/SA parallelize candidate evaluation *inside* each
    /// scenario (campaign reports are byte-identical at any thread
    /// count; see `incdes_mapping::SearchParallelism`).
    #[serde(default)]
    pub parallelism: SearchParallelism,
}

/// One grid point of a campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioKey {
    /// Position in the campaign's deterministic scenario order.
    pub index: usize,
    /// Value on the size axis (0 when the axis is empty).
    pub size: usize,
    /// The scenario's mapping strategy.
    pub strategy: Strategy,
    /// The scenario's RNG seed.
    pub seed: u64,
    /// The scenario's objective weights.
    pub weights: WeightSetting,
}

/// A structurally invalid campaign specification.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// A grid axis or the script is empty.
    EmptyAxis(&'static str),
    /// A step uses [`Count::Size`] but the size axis is empty.
    SizeAxisMissing,
    /// `demand_factor` is not a positive finite number, or
    /// `future_processes` is zero.
    BadFutureProfile,
    /// [`BaseSpec::Preset`] names an unknown preset.
    UnknownPreset(String),
    /// The resolved generator configuration is degenerate.
    Synth(SynthError),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::EmptyAxis(axis) => write!(f, "campaign axis `{axis}` is empty"),
            SpecError::SizeAxisMissing => {
                write!(f, "a script step uses Count::Size but `sizes` is empty")
            }
            SpecError::BadFutureProfile => {
                write!(
                    f,
                    "future_processes must be > 0 and demand_factor positive and finite"
                )
            }
            SpecError::UnknownPreset(name) => write!(
                f,
                "unknown preset `{name}` (expected \"dac2001\" or \"dac2001-small\")"
            ),
            SpecError::Synth(e) => write!(f, "invalid generator configuration: {e}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<SynthError> for SpecError {
    fn from(e: SynthError) -> Self {
        SpecError::Synth(e)
    }
}

impl CampaignSpec {
    /// Checks the spec's structure (axes, script, future profile).
    ///
    /// # Errors
    ///
    /// The first [`SpecError`] found.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.strategies.is_empty() {
            return Err(SpecError::EmptyAxis("strategies"));
        }
        if self.seeds.is_empty() {
            return Err(SpecError::EmptyAxis("seeds"));
        }
        if self.script.is_empty() {
            return Err(SpecError::EmptyAxis("script"));
        }
        if self.future_processes == 0
            || !self.demand_factor.is_finite()
            || self.demand_factor <= 0.0
        {
            return Err(SpecError::BadFutureProfile);
        }
        let uses_size = self.script.iter().any(|s| {
            matches!(
                s,
                ScriptStep::Add {
                    processes: Count::Size,
                    ..
                } | ScriptStep::Probe {
                    processes: Count::Size,
                    ..
                }
            )
        });
        if uses_size && self.sizes.is_empty() {
            return Err(SpecError::SizeAxisMissing);
        }
        self.resolve_config()?;
        Ok(())
    }

    /// Resolves the base into a concrete generator configuration.
    ///
    /// # Errors
    ///
    /// [`SpecError::UnknownPreset`] for unknown preset names.
    pub fn resolve_config(&self) -> Result<SynthConfig, SpecError> {
        match &self.base {
            BaseSpec::Config(cfg) => Ok(cfg.clone()),
            BaseSpec::Preset(name) => match name.as_str() {
                "dac2001" => Ok(dac2001().cfg),
                "dac2001-small" => Ok(dac2001_small().cfg),
                other => Err(SpecError::UnknownPreset(other.to_string())),
            },
        }
    }

    /// The campaign's scenarios in their deterministic order: sizes ×
    /// strategies × seeds × weight settings, slowest axis first.
    pub fn scenarios(&self) -> Vec<ScenarioKey> {
        let sizes: &[usize] = if self.sizes.is_empty() {
            &[0]
        } else {
            &self.sizes
        };
        let default_weights = [WeightSetting::default()];
        let weights: &[WeightSetting] = if self.weight_settings.is_empty() {
            &default_weights
        } else {
            &self.weight_settings
        };
        let mut keys = Vec::new();
        for &size in sizes {
            for strategy in &self.strategies {
                for &seed in &self.seeds {
                    for setting in weights {
                        keys.push(ScenarioKey {
                            index: keys.len(),
                            size,
                            strategy: *strategy,
                            seed,
                            weights: setting.clone(),
                        });
                    }
                }
            }
        }
        keys
    }

    /// A small, fast demo campaign: tiny synthetic systems, MH and SA,
    /// a probe and a decommission step. This is the spec behind the
    /// `scenario_campaign` regression suite and the `figures campaign`
    /// subcommand; it finishes in seconds at every worker count.
    pub fn small_demo() -> CampaignSpec {
        use incdes_mapping::{MhConfig, SaConfig};
        CampaignSpec {
            name: "small-demo".to_string(),
            base: BaseSpec::Config(SynthConfig {
                pe_count: 3,
                slot_length: Time::new(8),
                rounds: 1,
                bytes_per_tick: 8,
                periods: vec![Time::new(96), Time::new(192)],
                graph_size: (3, 6),
                depth: (2, 3),
                wcet: (2, 6),
                pe_allow_prob: 0.7,
                wcet_spread: 0.2,
                msg_bytes: (2, 8),
                edge_extra_prob: 0.1,
            }),
            future_processes: 10,
            demand_factor: 2.0,
            sizes: vec![6, 10],
            strategies: vec![
                Strategy::MappingHeuristic(MhConfig {
                    max_iterations: 12,
                    ..MhConfig::default()
                }),
                Strategy::SimulatedAnnealing(SaConfig::quick()),
            ],
            seeds: vec![1, 2],
            weight_settings: Vec::new(),
            script: vec![
                ScriptStep::Add {
                    processes: Count::Fixed(8),
                    strategy: Some(Strategy::AdHoc),
                    future: false,
                },
                ScriptStep::Add {
                    processes: Count::Fixed(8),
                    strategy: Some(Strategy::AdHoc),
                    future: false,
                },
                ScriptStep::Add {
                    processes: Count::Size,
                    strategy: None,
                    future: false,
                },
                ScriptStep::Probe {
                    processes: Count::Fixed(6),
                    strategy: None,
                    future: true,
                },
                ScriptStep::Decommission { app: 0 },
                ScriptStep::Add {
                    processes: Count::Fixed(6),
                    strategy: Some(Strategy::AdHoc),
                    future: false,
                },
            ],
            check_invariants: true,
            parallelism: SearchParallelism::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_demo_is_valid() {
        let spec = CampaignSpec::small_demo();
        spec.validate().unwrap();
        // 2 sizes × 2 strategies × 2 seeds × 1 (default weights).
        assert_eq!(spec.scenarios().len(), 8);
        let keys = spec.scenarios();
        assert_eq!(keys[0].index, 0);
        assert_eq!(keys[7].index, 7);
        assert_eq!(keys[0].weights.label, "default");
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = CampaignSpec::small_demo();
        let json = serde_json::to_string_pretty(&spec).unwrap();
        let back: CampaignSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn preset_resolution() {
        let mut spec = CampaignSpec::small_demo();
        spec.base = BaseSpec::Preset("dac2001-small".to_string());
        assert_eq!(spec.resolve_config().unwrap().pe_count, 4);
        spec.base = BaseSpec::Preset("dac2001".to_string());
        assert_eq!(spec.resolve_config().unwrap().pe_count, 10);
        spec.base = BaseSpec::Preset("nope".to_string());
        assert!(matches!(
            spec.resolve_config(),
            Err(SpecError::UnknownPreset(_))
        ));
    }

    #[test]
    fn degenerate_specs_rejected() {
        let mut spec = CampaignSpec::small_demo();
        spec.strategies.clear();
        assert_eq!(spec.validate(), Err(SpecError::EmptyAxis("strategies")));

        let mut spec = CampaignSpec::small_demo();
        spec.seeds.clear();
        assert_eq!(spec.validate(), Err(SpecError::EmptyAxis("seeds")));

        let mut spec = CampaignSpec::small_demo();
        spec.script.clear();
        assert_eq!(spec.validate(), Err(SpecError::EmptyAxis("script")));

        let mut spec = CampaignSpec::small_demo();
        spec.sizes.clear();
        assert_eq!(spec.validate(), Err(SpecError::SizeAxisMissing));

        let mut spec = CampaignSpec::small_demo();
        spec.demand_factor = 0.0;
        assert_eq!(spec.validate(), Err(SpecError::BadFutureProfile));
    }

    #[test]
    fn empty_optional_axes_get_defaults() {
        let mut spec = CampaignSpec::small_demo();
        spec.sizes.clear();
        spec.script.retain(|s| {
            !matches!(
                s,
                ScriptStep::Add {
                    processes: Count::Size,
                    ..
                }
            )
        });
        spec.validate().unwrap();
        let keys = spec.scenarios();
        assert_eq!(keys.len(), 4, "size axis collapses to one point");
        assert!(keys.iter().all(|k| k.size == 0));
    }
}
