//! Deterministic scenario campaigns for the incremental design system.
//!
//! The paper's evaluation — synthetic task graphs at several sizes,
//! mapped incrementally under different strategies, compared across
//! seeds — is one instance of a general shape: a *grid* of scenarios,
//! each walking a lifecycle script (`add` / `probe` / `decommission`)
//! against its own session. This crate makes that shape a first-class,
//! serde-typed object:
//!
//! * [`CampaignSpec`] — the grid (sizes × strategies × seeds × weight
//!   settings) plus the script, serializable to/from JSON;
//! * [`run_campaign`] — a multi-threaded runner that fans scenarios out
//!   over `std::thread` workers, each with a private per-scenario
//!   `ChaCha8` RNG;
//! * [`CampaignReport`] — the stable, sorted, timing-free JSON report;
//! * [`run_campaign_store`] — the store-backed runner: scenarios whose
//!   content-addressed blob exists in a persistent
//!   [`incdes_store::Store`] are served from cache, the rest execute
//!   and are written back; [`Shard`] partitions a campaign across
//!   processes and [`merge_reports`] joins the shard reports into the
//!   canonical one (see [`cache`]).
//!
//! # Determinism guarantee
//!
//! The same spec yields **byte-identical** JSON reports across runs and
//! across worker counts: scenario results depend only on the spec (every
//! RNG is seeded from the scenario's grid point, workers share nothing
//! but the work queue), and the report orders scenarios by their spec
//! index and carries no wall-clock fields. `tests/scenario_campaign.rs`
//! in the workspace root enforces this property on every CI run.
//!
//! # Example
//!
//! ```
//! use incdes_explore::{run_campaign, BaseSpec, CampaignSpec, Count, ScriptStep};
//! use incdes_mapping::Strategy;
//! use incdes_synth::SynthConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = CampaignSpec {
//!     name: "doc-example".into(),
//!     base: BaseSpec::Config(SynthConfig::default()),
//!     future_processes: 20,
//!     demand_factor: 1.0,
//!     sizes: vec![10],
//!     strategies: vec![Strategy::AdHoc],
//!     seeds: vec![42],
//!     weight_settings: vec![],
//!     script: vec![ScriptStep::Add {
//!         processes: Count::Size,
//!         strategy: None,
//!         future: false,
//!     }],
//!     check_invariants: true,
//!     parallelism: Default::default(),
//! };
//! let run = run_campaign(&spec, 2)?;
//! let report = run.report();
//! assert_eq!(report.scenarios.len(), 1);
//! assert!(report.scenarios[0].steps[0].feasible);
//! assert!(report.totals.invariant_violations == 0);
//! // Byte-identical on every rerun, at any worker count:
//! assert_eq!(
//!     report.to_json_pretty()?,
//!     run_campaign(&spec, 1)?.report().to_json_pretty()?,
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod report;
pub mod runner;
pub mod spec;

pub use cache::{
    live_keys, merge_reports, run_campaign_store, scenario_store_key, CacheStats, MergeError,
    ScenarioProfile, Shard, StoreOptions, StoredCampaign, CODE_EPOCH,
};
pub use report::{
    CampaignReport, CampaignTotals, CostReport, ScenarioReport, ScheduleReport, StepReport,
};
pub use runner::{
    run_campaign, CampaignRun, CompletedScenario, ScenarioFailure, ScenarioOutcome, StepAction,
    StepOutcome,
};
pub use spec::{BaseSpec, CampaignSpec, Count, ScenarioKey, ScriptStep, SpecError, WeightSetting};
