//! Serializable campaign reports.
//!
//! A [`CampaignReport`] is the stable, sorted JSON view of a campaign
//! run: scenarios in spec order, steps in script order, and **no
//! wall-clock timings** — every field is a pure function of the spec, so
//! the same spec yields byte-identical reports across runs and across
//! worker counts. Timings live on the in-memory
//! [`crate::runner::ScenarioOutcome`] instead.

use incdes_core::System;
use incdes_metrics::DesignCost;
use serde::{Deserialize, Serialize};

/// The deterministic, serializable result of one campaign run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Campaign name from the spec.
    pub campaign: String,
    /// Per-scenario reports, sorted by scenario index.
    pub scenarios: Vec<ScenarioReport>,
    /// Campaign-wide tallies.
    pub totals: CampaignTotals,
}

/// Campaign-wide tallies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignTotals {
    /// Scenarios executed.
    pub scenarios: usize,
    /// Script steps executed across all scenarios.
    pub steps: usize,
    /// Steps that were feasible (commit succeeded / probe fit /
    /// decommission applied).
    pub feasible_steps: usize,
    /// Schedule evaluations spent across all strategy runs.
    pub evaluations: usize,
    /// Placement steps the delta scheduler spliced from run records
    /// instead of re-placing, across all strategy runs.
    #[serde(default)]
    pub spliced_steps: usize,
    /// Scheduling-invariant violations found (0 on a healthy campaign).
    pub invariant_violations: usize,
}

impl CampaignTotals {
    /// Tallies a set of scenario reports. This is the one definition of
    /// the totals — the runner, the cached runner and `merge` all use
    /// it, so a merged report's totals match the unsharded run's
    /// byte-for-byte.
    #[must_use]
    pub fn from_scenarios(scenarios: &[ScenarioReport]) -> CampaignTotals {
        CampaignTotals {
            scenarios: scenarios.len(),
            steps: scenarios.iter().map(|s| s.steps.len()).sum(),
            feasible_steps: scenarios
                .iter()
                .flat_map(|s| &s.steps)
                .filter(|s| s.feasible)
                .count(),
            evaluations: scenarios
                .iter()
                .flat_map(|s| &s.steps)
                .map(|s| s.evaluations)
                .sum(),
            spliced_steps: scenarios
                .iter()
                .flat_map(|s| &s.steps)
                .map(|s| s.spliced_steps)
                .sum(),
            invariant_violations: scenarios.iter().map(|s| s.invariant_violations.len()).sum(),
        }
    }
}

/// One scenario's serializable result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// Position in the campaign's scenario order.
    pub index: usize,
    /// Value on the size axis (0 when the axis is unused).
    pub size: usize,
    /// Strategy display name (`AH`, `MH`, `SA`).
    pub strategy: String,
    /// The scenario's RNG seed.
    pub seed: u64,
    /// Label of the scenario's weight setting.
    pub weights: String,
    /// Step results in script order.
    pub steps: Vec<StepReport>,
    /// Snapshot of the final schedule.
    pub schedule: ScheduleReport,
    /// Invariant violations found after mutating steps (empty unless the
    /// spec enabled `check_invariants` and something is broken).
    pub invariant_violations: Vec<String>,
}

/// One script step's serializable result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepReport {
    /// Step index in the script.
    pub step: usize,
    /// `"add"`, `"probe"` or `"decommission"`.
    pub action: String,
    /// Whether the step succeeded (commit ok / probe fit / decommission
    /// applied).
    pub feasible: bool,
    /// Id assigned by a successful add.
    pub app_id: Option<u32>,
    /// Objective value of the chosen design alternative (add/probe).
    pub cost: Option<CostReport>,
    /// Schedule evaluations the strategy spent.
    pub evaluations: usize,
    /// Strategy iterations (MH improvement steps, SA accepted moves).
    pub iterations: usize,
    /// Raw schedules served via the delta path (record splicing).
    #[serde(default)]
    pub delta_schedules: usize,
    /// Placement steps spliced from run records instead of re-placed.
    #[serde(default)]
    pub spliced_steps: usize,
    /// System horizon in ticks after the step.
    pub horizon: u64,
    /// Error message for failed steps (validation errors, unknown app,
    /// ...); plain infeasibility is `feasible: false` with no error.
    pub error: Option<String>,
}

/// Serializable view of a [`DesignCost`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostReport {
    /// C1P: % of future process time that does not pack.
    pub c1_processes: f64,
    /// C1m: % of future bus time that does not pack.
    pub c1_messages: f64,
    /// C2P in ticks.
    pub c2_processes: u64,
    /// C2m in ticks.
    pub c2_messages: u64,
    /// Process-side periodic-slack penalty in ticks.
    pub penalty_processes: u64,
    /// Bus-side periodic-slack penalty in ticks.
    pub penalty_messages: u64,
    /// The weighted total `C`.
    pub total: f64,
}

impl From<DesignCost> for CostReport {
    fn from(c: DesignCost) -> Self {
        CostReport {
            c1_processes: c.c1_processes,
            c1_messages: c.c1_messages,
            c2_processes: c.c2_processes.ticks(),
            c2_messages: c.c2_messages.ticks(),
            penalty_processes: c.penalty_processes.ticks(),
            penalty_messages: c.penalty_messages.ticks(),
            total: c.total,
        }
    }
}

/// Deterministic snapshot of a scenario's final schedule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleReport {
    /// Hyperperiod in ticks.
    pub horizon: u64,
    /// Scheduled jobs in the table.
    pub jobs: usize,
    /// Scheduled bus messages in the table.
    pub messages: usize,
    /// Applications ever committed (including retired ones).
    pub committed_apps: usize,
    /// Applications still running.
    pub active_apps: usize,
    /// Busy time per PE in ticks, in PE order.
    pub pe_busy: Vec<u64>,
    /// Total bus transmission time in ticks.
    pub bus_used: u64,
}

impl ScheduleReport {
    /// Captures the current schedule of a session.
    pub fn capture(system: &System) -> Self {
        let table = system.table();
        ScheduleReport {
            horizon: table.horizon().ticks(),
            jobs: table.jobs().len(),
            messages: table.messages().len(),
            committed_apps: system.app_count(),
            active_apps: system.active().count(),
            pe_busy: system
                .arch()
                .pe_ids()
                .map(|pe| table.busy_time_on(pe).ticks())
                .collect(),
            bus_used: table
                .messages()
                .iter()
                .map(|m| m.reservation.duration().ticks())
                .sum(),
        }
    }
}

impl CampaignReport {
    /// Serializes to indented JSON (the campaign artifact format).
    ///
    /// # Errors
    ///
    /// Propagates `serde_json` failures (unreachable for this data
    /// model: every float in a report is finite).
    pub fn to_json_pretty(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Deserializes from JSON.
    ///
    /// # Errors
    ///
    /// Returns the `serde_json` parse error.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}
